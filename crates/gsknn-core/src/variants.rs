//! The six-loop GSKNN nest (Algorithm 2.2) with every legal placement of
//! the heap selection (§2.3, Var#1–Var#6 minus the non-viable Var#4).
//!
//! Loop roles (outer to inner): 6th `jc` partitions the references by
//! `nc`; 5th `pc` partitions the dimension by `dc`; 4th `ic` partitions
//! the queries by `mc`; 3rd `jr` / 2nd `ir` sweep `NR`/`MR` micro-tiles;
//! the 1st loop is the fused micro-kernel ([`crate::microkernel`]).
//!
//! Selection placement:
//!
//! | Variant | after loop | distances buffered          |
//! |---------|-----------|------------------------------|
//! | Var#1   | 1st        | none (tile consumed hot)     |
//! | Var#2   | 2nd        | `m × nc` block (strip reads) |
//! | Var#3   | 3rd        | `m × nc` block               |
//! | Var#5   | 5th        | `m × nc` block               |
//! | Var#6   | 6th        | full `m × n`                 |
//!
//! The 4th-loop body (`ic_block_body`) is factored out so the
//! data-parallel scheme (§2.5) can run it on disjoint query chunks —
//! private `Qc` per thread, shared packed `Rc` — without duplicating the
//! nest.
//!
//! The whole nest is generic over the element type ([`FusedScalar`]):
//! the micro-tile geometry (`T::MR × T::NR`) and the SIMD kernels come
//! from the type, everything else — blocking, packing, selection — is
//! shared between f64 and f32.

use crate::buffers::{GsknnWorkspace, KernelStats};
use crate::microkernel::{tile_pass, FusedScalar, PassMode};
use crate::obs::{Phase, PhaseSet};
use crate::packing::{pack_q_panel, pack_r_panel, pack_sqnorms};
use crate::params::Variant;
use dataset::{DistanceKind, PointSet};
use gemm_kernel::{AlignedBuf, GemmParams};
use gsknn_scalar::{GsknnScalar, MAX_TILE};
use knn_select::{BinaryMaxHeap, FourHeap, Neighbor};

/// Per-query selection heap: binary for small `k` (Var#1's choice), 4-ary
/// for large `k` (Var#6's choice) — §2.4 "Heap selection".
///
/// When built from a non-empty existing row ([`SelHeap::from_row`]), the
/// heap switches to id-unique insertion: the iterated approximate solvers
/// re-visit stored neighbors across trees/tables, and without the
/// membership check a duplicate id would evict a genuine k-th neighbor
/// (breaking the solvers' recall monotonicity). Fresh heaps keep the
/// unchecked O(1)-filter push of the paper.
#[derive(Clone, Debug)]
pub enum SelHeap<T: GsknnScalar = f64> {
    /// Binary max-heap (`dedup` = id-unique insertion).
    Bin(BinaryMaxHeap<T>, bool),
    /// Padded 4-ary max-heap (`dedup` = id-unique insertion).
    Four(FourHeap<T>, bool),
}

impl<T: GsknnScalar> SelHeap<T> {
    /// Fresh heap of capacity `k`; `four` picks the 4-ary layout.
    pub fn new(k: usize, four: bool) -> Self {
        if four {
            SelHeap::Four(FourHeap::new(k), false)
        } else {
            SelHeap::Bin(BinaryMaxHeap::new(k), false)
        }
    }

    /// Build from an existing neighbor row (sentinels dropped); id-unique
    /// insertion is enabled iff the row holds any real entry.
    pub fn from_row(k: usize, row: &[Neighbor<T>], four: bool) -> Self {
        let seeded = row.iter().any(|n| n.dist.is_finite());
        if four {
            SelHeap::Four(FourHeap::from_row(k, row), seeded)
        } else {
            SelHeap::Bin(BinaryMaxHeap::from_row(k, row), seeded)
        }
    }

    /// Offer a candidate.
    #[inline(always)]
    pub fn push(&mut self, cand: Neighbor<T>) -> bool {
        match self {
            SelHeap::Bin(h, false) => h.push(cand),
            SelHeap::Bin(h, true) => h.push_unique(cand),
            SelHeap::Four(h, false) => h.push(cand),
            SelHeap::Four(h, true) => h.push_unique(cand),
        }
    }

    /// Current pruning bound (+∞ until full).
    #[inline(always)]
    pub fn threshold(&self) -> T {
        match self {
            SelHeap::Bin(h, _) => h.threshold(),
            SelHeap::Four(h, _) => h.threshold(),
        }
    }

    /// Drain into ascending sorted order.
    pub fn into_sorted_vec(self) -> Vec<Neighbor<T>> {
        match self {
            SelHeap::Bin(h, _) => h.into_sorted_vec(),
            SelHeap::Four(h, _) => h.into_sorted_vec(),
        }
    }

    /// Append the stored neighbors to `out` in ascending order without
    /// consuming the heap — the reusable-workspace form of
    /// [`SelHeap::into_sorted_vec`].
    pub fn sorted_into(&self, out: &mut Vec<Neighbor<T>>) {
        match self {
            SelHeap::Bin(h, _) => h.sorted_into(out),
            SelHeap::Four(h, _) => h.sorted_into(out),
        }
    }

    /// Re-initialize in place to exactly what [`SelHeap::from_row`] would
    /// build, reusing the backing storage when the heap layout matches.
    ///
    /// The rebuilt contents are identical to `from_row`'s: seeding a heap
    /// of capacity `k` with a row of at most `k` entries never evicts, so
    /// heapify-from-slice and push-one-at-a-time keep the same entry set.
    pub fn reset_from_row(&mut self, k: usize, row: &[Neighbor<T>], four: bool) {
        let seeded = row.iter().any(|n| n.dist.is_finite());
        match (&mut *self, four) {
            (SelHeap::Bin(h, dedup), false) => {
                h.reset(k);
                for nb in row.iter().filter(|n| n.dist.is_finite()) {
                    h.push(*nb);
                }
                *dedup = seeded;
            }
            (SelHeap::Four(h, dedup), true) => {
                h.reset(k);
                for nb in row.iter().filter(|n| n.dist.is_finite()) {
                    h.push(*nb);
                }
                *dedup = seeded;
            }
            _ => *self = SelHeap::from_row(k, row, four),
        }
    }
}

/// Immutable description of one kernel invocation.
///
/// The paper's interface draws queries and references from one global
/// table `X`; here the two sides may come from *different* tables of the
/// same dimension (`xq`/`xr`), which adds out-of-sample (train/test)
/// search for free — pass the same table twice for the paper's setting
/// ([`DriverArgs::same`]).
pub struct DriverArgs<'a, T: GsknnScalar = f64> {
    /// Coordinate table the queries are gathered from.
    pub xq: &'a PointSet<T>,
    /// Coordinate table the references are gathered from.
    pub xr: &'a PointSet<T>,
    /// Query ids into `xq` (the `q` array — general stride).
    pub q_idx: &'a [usize],
    /// Reference ids into `xr` (the `r` array).
    pub r_idx: &'a [usize],
    /// Distance to compute.
    pub kind: DistanceKind,
    /// Blocking parameters.
    pub params: GemmParams,
    /// Selection placement (must be concrete, not `Auto`).
    pub variant: Variant,
}

impl<'a, T: GsknnScalar> DriverArgs<'a, T> {
    /// The paper's single-table form: queries and references both from `x`.
    pub fn same(
        x: &'a PointSet<T>,
        q_idx: &'a [usize],
        r_idx: &'a [usize],
        kind: DistanceKind,
        params: GemmParams,
        variant: Variant,
    ) -> Self {
        DriverArgs {
            xq: x,
            xr: x,
            q_idx,
            r_idx,
            kind,
            params,
            variant,
        }
    }
}

/// Geometry shared by the serial and parallel drivers.
pub(crate) struct CcGeometry {
    /// Row stride of the `Cc` buffer (columns padded to `NR`).
    pub ldcc: usize,
    /// Total `Cc` rows (queries padded to `MR`).
    pub pad_m: usize,
    /// Whether a `Cc` buffer is needed at all.
    pub need_cc: bool,
}

pub(crate) fn cc_geometry<T: GsknnScalar>(args: &DriverArgs<'_, T>) -> CcGeometry {
    let (mr, nr) = (T::MR, T::NR);
    let m = args.q_idx.len();
    let n = args.r_idx.len();
    let d = args.xq.dim();
    let multipass = d > args.params.dc;
    let buffered = args.variant != Variant::Var1;
    let pad_m = m.div_ceil(mr) * mr;
    let ldcc = if args.variant == Variant::Var6 {
        n.div_ceil(nr) * nr
    } else {
        args.params.nc.min(n.div_ceil(nr) * nr)
    };
    CcGeometry {
        ldcc,
        pad_m,
        need_cc: multipass || buffered,
    }
}

/// State of the current `(jc, pc)` iteration handed to the 4th-loop body.
pub(crate) struct RefBlock<'a, T: GsknnScalar = f64> {
    /// Packed `Rc` panel for this `(jc, pc)`.
    pub r_pack: &'a [T],
    /// Packed `R2c` (only valid when `last`).
    pub r2_pack: &'a [T],
    /// Reference-block origin (6th-loop index).
    pub jc: usize,
    /// Reference-block extent.
    pub ncb: usize,
    /// Dimension-block extent (5th loop).
    pub dcb: usize,
    /// First `d`-block?
    pub first: bool,
    /// Last `d`-block (distances finalize)?
    pub last: bool,
    /// `Cc` column of this block's first reference.
    pub col0: usize,
    /// Dimension-block origin (5th-loop index).
    pub pc: usize,
}

/// The 4th-loop body for one query chunk: pack `Qc`(+`Qc2`), sweep the
/// 3rd/2nd loops, run the fused micro-kernel per tile, and perform
/// Var#1/2/3 selection. All row indexing is local to the chunk: `heaps`
/// and `cc_rows` start at query `ic_global`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ic_block_body<T: FusedScalar>(
    args: &DriverArgs<'_, T>,
    ic_global: usize,
    mcb: usize,
    rb: &RefBlock<'_, T>,
    ldcc: usize,
    q_pack: &mut AlignedBuf<T>,
    q2_pack: &mut AlignedBuf<T>,
    mut cc_rows: Option<&mut [T]>,
    heaps: &mut [SelHeap<T>],
    stats: &mut KernelStats,
    phases: &mut PhaseSet,
) {
    let (mr, nr) = (T::MR, T::NR);
    let variant = args.variant;
    let multipass = args.xq.dim() > args.params.dc;
    let buffered = variant != Variant::Var1;
    let dcb = rb.dcb;
    let mblocks = mcb.div_ceil(mr);
    // placeholder norms for partial passes (never read by finalize)
    let zero_row = [T::ZERO; MAX_TILE];

    gsknn_faults::fail_point!(gsknn_faults::FaultPoint::PackQ);
    phases.time(Phase::PackQ, || {
        q_pack.resize(mblocks * mr * dcb);
        pack_q_panel(
            args.xq,
            args.q_idx,
            ic_global,
            mcb,
            rb.pc,
            dcb,
            q_pack.as_mut_slice(),
        );
        if rb.last {
            q2_pack.resize(mblocks * mr);
            pack_sqnorms(
                args.xq,
                args.q_idx,
                ic_global,
                mcb,
                mr,
                q2_pack.as_mut_slice(),
            );
        }
    });

    // 3rd loop: reference micro-panels
    for jr in (0..rb.ncb).step_by(nr) {
        let nre = (rb.ncb - jr).min(nr);
        let bp = &rb.r_pack[(jr / nr) * nr * dcb..];
        // §2.4 rank-dc pipeline: prefetch the *next* Rc micro-panel so it
        // streams toward L1 while the whole ir sweep consumes the current
        // one (the paper's "the next required micro-panel of Rc ... can
        // be prefetched and overlapped with the current rank-dc update").
        #[cfg(target_arch = "x86_64")]
        {
            let next = (jr / nr + 1) * nr * dcb;
            if next < rb.r_pack.len() {
                // SAFETY: prefetch has no architectural memory effects
                // and the address is in-bounds of r_pack.
                unsafe {
                    std::arch::x86_64::_mm_prefetch(
                        rb.r_pack.as_ptr().add(next) as *const i8,
                        std::arch::x86_64::_MM_HINT_T0,
                    )
                };
            }
        }
        // 2nd loop: query micro-panels
        for ir in (0..mcb).step_by(mr) {
            gsknn_faults::fail_point!(gsknn_faults::FaultPoint::MicroKernel);
            let mre = (mcb - ir).min(mr);
            let ap = &q_pack.as_slice()[(ir / mr) * mr * dcb..];
            let tile_origin = ir * ldcc + rb.col0 + jr;

            if !rb.last {
                let cc = cc_rows.as_deref_mut().expect("partial pass requires Cc");
                phases.time(Phase::RankDc, || {
                    tile_pass(
                        args.kind,
                        dcb,
                        ap,
                        bp,
                        &zero_row,
                        &zero_row,
                        PassMode::Partial {
                            cc: &mut cc[tile_origin..],
                            ldcc,
                            first: rb.first,
                        },
                    )
                });
                continue;
            }

            let q2 = &q2_pack.as_slice()[ir..];
            let r2 = &rb.r2_pack[jr..];
            let mut out = [T::ZERO; MAX_TILE];
            {
                let prior = if multipass && !rb.first {
                    let cc = cc_rows.as_deref().expect("multipass requires Cc");
                    Some((&cc[tile_origin..], ldcc))
                } else {
                    None
                };
                phases.time(Phase::RankDc, || {
                    tile_pass(
                        args.kind,
                        dcb,
                        ap,
                        bp,
                        q2,
                        r2,
                        PassMode::Last {
                            prior,
                            out: &mut out,
                        },
                    )
                });
            }

            stats.tiles += 1;
            if buffered {
                let cc = cc_rows
                    .as_deref_mut()
                    .expect("buffered variant requires Cc");
                // The buffered variants' "store C" traffic belongs to the
                // rank-dc phase: it is the write the fused Var#1 avoids.
                phases.time(Phase::RankDc, || {
                    for i in 0..mr {
                        let dst = &mut cc[tile_origin + i * ldcc..tile_origin + i * ldcc + nr];
                        dst.copy_from_slice(&out[i * nr..i * nr + nr]);
                    }
                });
            } else {
                gsknn_faults::fail_point!(gsknn_faults::FaultPoint::HeapSelect);
                phases.time(Phase::Select, || {
                    select_tile(&out, ir, mre, rb.jc + jr, nre, args.r_idx, heaps, stats)
                });
            }
        }
        // Var#2: select the mcb × nre strip just completed
        if variant == Variant::Var2 && rb.last {
            let cc = cc_rows.as_deref().expect("Var#2 requires Cc");
            phases.time(Phase::Select, || {
                select_block(
                    cc,
                    ldcc,
                    0..mcb,
                    rb.col0 + jr..rb.col0 + jr + nre,
                    rb.jc + jr,
                    args.r_idx,
                    heaps,
                    stats,
                )
            });
        }
    }
    // Var#3: select the mcb × ncb macro-block
    if variant == Variant::Var3 && rb.last {
        let cc = cc_rows.as_deref().expect("Var#3 requires Cc");
        phases.time(Phase::Select, || {
            select_block(
                cc,
                ldcc,
                0..mcb,
                rb.col0..rb.col0 + rb.ncb,
                rb.jc,
                args.r_idx,
                heaps,
                stats,
            )
        });
    }
}

/// Run the six-loop nest serially, updating `heaps[i]` (one per query,
/// `heaps.len() == q_idx.len()`) with every reference candidate.
pub fn run_serial<T: FusedScalar>(
    args: &DriverArgs<'_, T>,
    heaps: &mut [SelHeap<T>],
    ws: &mut GsknnWorkspace<T>,
) {
    let (mr, nr) = (T::MR, T::NR);
    let m = args.q_idx.len();
    let n = args.r_idx.len();
    let d = args.xq.dim();
    assert_eq!(heaps.len(), m, "one heap per query");
    assert_eq!(d, args.xr.dim(), "query/reference dimension mismatch");
    assert!(
        args.variant != Variant::Auto,
        "driver needs a concrete variant"
    );
    args.params
        .validate_for::<T>()
        .expect("invalid blocking parameters");
    if m == 0 || n == 0 || d == 0 {
        feed_degenerate(args, heaps);
        return;
    }

    let GemmParams { dc, mc, nc } = args.params;
    let variant = args.variant;
    let geo = cc_geometry(args);
    let GsknnWorkspace {
        q_pack,
        r_pack,
        q2_pack,
        r2_pack,
        cc,
        stats,
        phases,
        ..
    } = ws;
    if geo.need_cc {
        cc.resize(geo.pad_m * geo.ldcc);
    }

    // 6th loop: partition the references
    for jc in (0..n).step_by(nc) {
        let ncb = (n - jc).min(nc);
        let col0 = if variant == Variant::Var6 { jc } else { 0 };

        // 5th loop: partition the dimension
        for pc in (0..d).step_by(dc) {
            let dcb = (d - pc).min(dc);
            let first = pc == 0;
            let last = pc + dcb >= d;

            let nblocks = ncb.div_ceil(nr);
            gsknn_faults::fail_point!(gsknn_faults::FaultPoint::PackR);
            phases.time(Phase::PackR, || {
                r_pack.resize(nblocks * nr * dcb);
                pack_r_panel(args.xr, args.r_idx, jc, ncb, pc, dcb, r_pack.as_mut_slice());
                if last {
                    r2_pack.resize(nblocks * nr);
                    pack_sqnorms(args.xr, args.r_idx, jc, ncb, nr, r2_pack.as_mut_slice());
                }
            });
            let rb = RefBlock {
                r_pack: r_pack.as_slice(),
                r2_pack: r2_pack.as_slice(),
                jc,
                ncb,
                dcb,
                first,
                last,
                col0,
                pc,
            };

            // 4th loop: partition the queries
            for ic in (0..m).step_by(mc) {
                let mcb = (m - ic).min(mc);
                let cc_rows = if geo.need_cc {
                    let rows = (geo.pad_m - ic).min(mc.div_ceil(mr) * mr);
                    Some(&mut cc.as_mut_slice()[ic * geo.ldcc..(ic + rows) * geo.ldcc])
                } else {
                    None
                };
                ic_block_body(
                    args,
                    ic,
                    mcb,
                    &rb,
                    geo.ldcc,
                    q_pack,
                    q2_pack,
                    cc_rows,
                    &mut heaps[ic..ic + mcb],
                    stats,
                    phases,
                );
            }
        }
        // Var#5: all queries against this jc block
        if variant == Variant::Var5 {
            phases.time(Phase::Select, || {
                select_block(
                    cc.as_slice(),
                    geo.ldcc,
                    0..m,
                    col0..col0 + ncb,
                    jc,
                    args.r_idx,
                    heaps,
                    stats,
                )
            });
        }
    }
    // Var#6: the classical post-hoc selection over the full matrix
    if variant == Variant::Var6 {
        phases.time(Phase::Select, || {
            select_block(
                cc.as_slice(),
                geo.ldcc,
                0..m,
                0..n,
                0,
                args.r_idx,
                heaps,
                stats,
            )
        });
    }
}

/// `d == 0`: every distance is 0; still feed candidates so the semantics
/// (k nearest ids by tie-break) hold. `m == 0` / `n == 0`: nothing to do.
pub(crate) fn feed_degenerate<T: GsknnScalar>(args: &DriverArgs<'_, T>, heaps: &mut [SelHeap<T>]) {
    if args.xq.dim() == 0 && !args.q_idx.is_empty() {
        for heap in heaps.iter_mut() {
            for &rj in args.r_idx {
                heap.push(Neighbor::new(T::ZERO, rj as u32));
            }
        }
    }
}

/// Var#1 tile selection with the vectorized root filter: one broadcast
/// compare per row decides whether the heap is touched at all — the O(n)
/// best case of heap selection.
#[inline]
#[allow(clippy::too_many_arguments)] // tile geometry is inherently wide
pub(crate) fn select_tile<T: FusedScalar>(
    out: &[T],
    row0: usize,
    mre: usize,
    refcol0: usize,
    nre: usize,
    r_idx: &[usize],
    heaps: &mut [SelHeap<T>],
    stats: &mut KernelStats,
) {
    let nr = T::NR;
    let use_simd = T::row_filter_available();
    for i in 0..mre {
        let heap = &mut heaps[row0 + i];
        let row = &out[i * nr..i * nr + nr];
        let thr = heap.threshold();
        if use_simd && nre == nr {
            // SAFETY: filter availability checked; row has NR elements.
            let mask = unsafe { T::row_filter_mask(row, thr) };
            if mask == 0 {
                stats.rows_filtered += 1;
                continue;
            }
        }
        stats.rows_scanned += 1;
        for (j, &dist) in row.iter().enumerate().take(nre) {
            // `thr` is the bound from before this row: it only admits more
            // than the live one, and `push` re-checks, so this stays exact.
            if dist <= thr {
                stats.candidates_offered += 1;
                if heap.push(Neighbor::new(dist, r_idx[refcol0 + j] as u32)) {
                    stats.candidates_kept += 1;
                }
            }
        }
    }
}

/// Buffered selection: scan rows of `Cc` and feed candidates to the
/// per-query heaps (`heaps[i - rows.start]` ↔ `Cc` row `i`, so callers
/// can hand in exactly the chunk of heaps covering `rows`). `cols` are
/// `Cc` column coordinates; the global reference of column `c` is
/// `r_idx[ref0 + (c - cols.start)]`.
#[allow(clippy::too_many_arguments)] // block geometry is inherently wide
pub(crate) fn select_block<T: GsknnScalar>(
    cc: &[T],
    ldcc: usize,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
    ref0: usize,
    r_idx: &[usize],
    heaps: &mut [SelHeap<T>],
    stats: &mut KernelStats,
) {
    let row0 = rows.start;
    for i in rows {
        let heap = &mut heaps[i - row0];
        let base = i * ldcc;
        stats.rows_scanned += 1;
        for (off, c) in cols.clone().enumerate() {
            let dist = cc[base + c];
            if dist <= heap.threshold() {
                stats.candidates_offered += 1;
                if heap.push(Neighbor::new(dist, r_idx[ref0 + off] as u32)) {
                    stats.candidates_kept += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::uniform;

    pub(crate) fn brute_force_t<T: GsknnScalar>(
        x: &PointSet<T>,
        q_idx: &[usize],
        r_idx: &[usize],
        k: usize,
        kind: DistanceKind,
    ) -> Vec<Vec<Neighbor<T>>> {
        q_idx
            .iter()
            .map(|&qi| {
                let mut cands: Vec<Neighbor<T>> = r_idx
                    .iter()
                    .map(|&rj| Neighbor::new(kind.eval(x.point(qi), x.point(rj)), rj as u32))
                    .collect();
                cands.sort_unstable_by(Neighbor::cmp_dist_idx);
                cands.truncate(k);
                cands
            })
            .collect()
    }

    pub(crate) fn brute_force(
        x: &PointSet,
        q_idx: &[usize],
        r_idx: &[usize],
        k: usize,
        kind: DistanceKind,
    ) -> Vec<Vec<Neighbor>> {
        brute_force_t::<f64>(x, q_idx, r_idx, k, kind)
    }

    fn run_variant_t<T: FusedScalar>(
        x: &PointSet<T>,
        q_idx: &[usize],
        r_idx: &[usize],
        k: usize,
        kind: DistanceKind,
        variant: Variant,
        params: GemmParams,
    ) -> Vec<Vec<Neighbor<T>>> {
        let args = DriverArgs::same(x, q_idx, r_idx, kind, params, variant);
        let mut heaps: Vec<SelHeap<T>> = (0..q_idx.len()).map(|_| SelHeap::new(k, false)).collect();
        let mut ws = GsknnWorkspace::new();
        run_serial(&args, &mut heaps, &mut ws);
        heaps.into_iter().map(|h| h.into_sorted_vec()).collect()
    }

    fn run_variant(
        x: &PointSet,
        q_idx: &[usize],
        r_idx: &[usize],
        k: usize,
        kind: DistanceKind,
        variant: Variant,
        params: GemmParams,
    ) -> Vec<Vec<Neighbor>> {
        run_variant_t::<f64>(x, q_idx, r_idx, k, kind, variant, params)
    }

    fn assert_rows_match_t<T: GsknnScalar>(
        got: &[Vec<Neighbor<T>>],
        want: &[Vec<Neighbor<T>>],
        tol: f64,
        ctx: &str,
    ) {
        assert_eq!(got.len(), want.len());
        for (qi, (g, w)) in got.iter().zip(want).enumerate() {
            assert_eq!(g.len(), w.len(), "{ctx}: row {qi} length");
            for (a, b) in g.iter().zip(w) {
                let (da, db) = (a.dist.to_f64(), b.dist.to_f64());
                assert!(
                    (da - db).abs() <= tol * (1.0 + db.abs()),
                    "{ctx}: row {qi}: dist {da} vs {db}"
                );
            }
        }
    }

    fn assert_rows_match(got: &[Vec<Neighbor>], want: &[Vec<Neighbor>], tol: f64, ctx: &str) {
        assert_rows_match_t::<f64>(got, want, tol, ctx)
    }

    #[test]
    fn all_variants_match_brute_force_small() {
        let x = uniform(60, 5, 11);
        let q_idx: Vec<usize> = (0..20).collect();
        let r_idx: Vec<usize> = (10..60).collect();
        let want = brute_force(&x, &q_idx, &r_idx, 4, DistanceKind::SqL2);
        for v in Variant::ALL {
            let got = run_variant(
                &x,
                &q_idx,
                &r_idx,
                4,
                DistanceKind::SqL2,
                v,
                GemmParams::tiny(),
            );
            assert_rows_match(&got, &want, 1e-9, v.name());
        }
    }

    #[test]
    fn f32_all_variants_match_f32_brute_force() {
        // the full nest in single precision, against an f32 oracle (same
        // arithmetic, different association order — tolerance covers it)
        let x: PointSet<f32> = uniform(60, 5, 11).cast();
        let q_idx: Vec<usize> = (0..20).collect();
        let r_idx: Vec<usize> = (10..60).collect();
        let want = brute_force_t::<f32>(&x, &q_idx, &r_idx, 4, DistanceKind::SqL2);
        for v in Variant::ALL {
            let got = run_variant_t::<f32>(
                &x,
                &q_idx,
                &r_idx,
                4,
                DistanceKind::SqL2,
                v,
                GemmParams::tiny_for::<f32>(),
            );
            assert_rows_match_t(&got, &want, 1e-4, v.name());
        }
    }

    #[test]
    fn f32_multipass_and_norms() {
        let x: PointSet<f32> = uniform(40, 37, 3).cast();
        let q_idx: Vec<usize> = (0..15).collect();
        let r_idx: Vec<usize> = (0..40).collect();
        for kind in [
            DistanceKind::SqL2,
            DistanceKind::L1,
            DistanceKind::LInf,
            DistanceKind::Cosine,
        ] {
            let want = brute_force_t::<f32>(&x, &q_idx, &r_idx, 6, kind);
            for v in [Variant::Var1, Variant::Var3, Variant::Var6] {
                let got = run_variant_t::<f32>(
                    &x,
                    &q_idx,
                    &r_idx,
                    6,
                    kind,
                    v,
                    GemmParams::tiny_for::<f32>(),
                );
                assert_rows_match_t(&got, &want, 1e-3, &format!("{} {}", v.name(), kind.name()));
            }
        }
    }

    #[test]
    fn multipass_d_exceeds_dc() {
        // d = 37 with dc = 8 forces 5 d-blocks including a fringe
        let x = uniform(40, 37, 3);
        let q_idx: Vec<usize> = (0..15).collect();
        let r_idx: Vec<usize> = (0..40).collect();
        let want = brute_force(&x, &q_idx, &r_idx, 6, DistanceKind::SqL2);
        for v in Variant::ALL {
            let got = run_variant(
                &x,
                &q_idx,
                &r_idx,
                6,
                DistanceKind::SqL2,
                v,
                GemmParams::tiny(),
            );
            assert_rows_match(&got, &want, 1e-9, v.name());
        }
    }

    #[test]
    fn non_euclidean_norms_all_variants() {
        let x = uniform(30, 9, 5);
        let q_idx: Vec<usize> = (5..25).collect();
        let r_idx: Vec<usize> = (0..30).collect();
        for kind in [
            DistanceKind::L1,
            DistanceKind::LInf,
            DistanceKind::Lp(2.5),
            DistanceKind::Cosine,
        ] {
            let want = brute_force(&x, &q_idx, &r_idx, 3, kind);
            for v in Variant::ALL {
                let got = run_variant(&x, &q_idx, &r_idx, 3, kind, v, GemmParams::tiny());
                assert_rows_match(&got, &want, 1e-9, &format!("{} {}", v.name(), kind.name()));
            }
        }
    }

    #[test]
    fn non_euclidean_norms_multipass() {
        // d > dc exercises the cross-pass combine (max for L∞!)
        let x = uniform(25, 21, 37);
        let q_idx: Vec<usize> = (0..10).collect();
        let r_idx: Vec<usize> = (0..25).collect();
        for kind in [DistanceKind::L1, DistanceKind::LInf, DistanceKind::Lp(1.5)] {
            let want = brute_force(&x, &q_idx, &r_idx, 4, kind);
            for v in [Variant::Var1, Variant::Var6] {
                let got = run_variant(&x, &q_idx, &r_idx, 4, kind, v, GemmParams::tiny());
                assert_rows_match(&got, &want, 1e-9, &format!("{} {}", v.name(), kind.name()));
            }
        }
    }

    #[test]
    fn general_stride_indices_shuffle() {
        // non-contiguous, repeated, reversed ids exercise the gather path
        let x = uniform(50, 8, 13);
        let q_idx = vec![49, 0, 33, 7, 7, 21];
        let r_idx: Vec<usize> = (0..50).rev().step_by(2).collect();
        let want = brute_force(&x, &q_idx, &r_idx, 5, DistanceKind::SqL2);
        for v in Variant::ALL {
            let got = run_variant(
                &x,
                &q_idx,
                &r_idx,
                5,
                DistanceKind::SqL2,
                v,
                GemmParams::tiny(),
            );
            assert_rows_match(&got, &want, 1e-9, v.name());
        }
    }

    #[test]
    fn k_exceeds_n_returns_all() {
        let x = uniform(10, 4, 17);
        let q_idx: Vec<usize> = (0..3).collect();
        let r_idx: Vec<usize> = (0..10).collect();
        let got = run_variant(
            &x,
            &q_idx,
            &r_idx,
            32,
            DistanceKind::SqL2,
            Variant::Var1,
            GemmParams::tiny(),
        );
        assert!(got.iter().all(|row| row.len() == 10));
    }

    #[test]
    fn heaps_accumulate_across_calls() {
        // call the kernel twice with two disjoint reference halves: result
        // must equal one call on the union — the neighbor-list update
        // stream of the approximate solvers.
        let x = uniform(80, 6, 23);
        let q_idx: Vec<usize> = (0..10).collect();
        let first_half: Vec<usize> = (0..40).collect();
        let second_half: Vec<usize> = (40..80).collect();
        let all: Vec<usize> = (0..80).collect();

        let mut heaps: Vec<SelHeap> = (0..10).map(|_| SelHeap::new(5, false)).collect();
        let mut ws = GsknnWorkspace::new();
        for half in [&first_half, &second_half] {
            let args = DriverArgs::same(
                &x,
                &q_idx,
                half,
                DistanceKind::SqL2,
                GemmParams::tiny(),
                Variant::Var1,
            );
            run_serial(&args, &mut heaps, &mut ws);
        }
        let got: Vec<Vec<Neighbor>> = heaps.into_iter().map(|h| h.into_sorted_vec()).collect();
        let want = brute_force(&x, &q_idx, &all, 5, DistanceKind::SqL2);
        assert_rows_match(&got, &want, 1e-9, "two-call update");
    }

    #[test]
    fn ivy_bridge_params_on_moderate_problem() {
        let x = uniform(700, 20, 31);
        let q_idx: Vec<usize> = (0..300).collect();
        let r_idx: Vec<usize> = (200..700).collect();
        let want = brute_force(&x, &q_idx, &r_idx, 16, DistanceKind::SqL2);
        for v in [Variant::Var1, Variant::Var6] {
            let got = run_variant(
                &x,
                &q_idx,
                &r_idx,
                16,
                DistanceKind::SqL2,
                v,
                GemmParams::ivy_bridge(),
            );
            assert_rows_match(&got, &want, 1e-9, v.name());
        }
    }

    #[test]
    fn f32_ivy_bridge_params_are_usable() {
        // the paper's f64 blocking (mc=104, nc=4096) happens to satisfy
        // the f32 8×8 tile's divisibility too — the default config must
        // keep working when the element type changes underneath it
        let x: PointSet<f32> = uniform(300, 20, 31).cast();
        let q_idx: Vec<usize> = (0..100).collect();
        let r_idx: Vec<usize> = (50..300).collect();
        let want = brute_force_t::<f32>(&x, &q_idx, &r_idx, 8, DistanceKind::SqL2);
        for v in [Variant::Var1, Variant::Var6] {
            let got = run_variant_t::<f32>(
                &x,
                &q_idx,
                &r_idx,
                8,
                DistanceKind::SqL2,
                v,
                GemmParams::ivy_bridge(),
            );
            assert_rows_match_t(&got, &want, 1e-3, v.name());
        }
    }

    #[test]
    fn four_heap_selection_matches_binary() {
        let x = uniform(90, 7, 41);
        let q_idx: Vec<usize> = (0..30).collect();
        let r_idx: Vec<usize> = (0..90).collect();
        let args = DriverArgs::same(
            &x,
            &q_idx,
            &r_idx,
            DistanceKind::SqL2,
            GemmParams::tiny(),
            Variant::Var6,
        );
        let mut bin: Vec<SelHeap> = (0..30).map(|_| SelHeap::new(9, false)).collect();
        let mut four: Vec<SelHeap> = (0..30).map(|_| SelHeap::new(9, true)).collect();
        let mut ws = GsknnWorkspace::new();
        run_serial(&args, &mut bin, &mut ws);
        run_serial(&args, &mut four, &mut ws);
        for (b, f) in bin.into_iter().zip(four) {
            assert_eq!(b.into_sorted_vec(), f.into_sorted_vec());
        }
    }
}
