//! Build kNN graphs from neighbor tables or directly from a point set.

use crate::csr::CsrGraph;
use dataset::{DistanceKind, PointSet};
use gsknn_core::GsknnConfig;
use knn_select::NeighborTable;
use rkdt::{AllNnSolver, GsknnLeaf, RkdtConfig};

/// How to turn the directed kNN relation into an undirected graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Symmetrize {
    /// Keep the raw directed edges (`u → v` iff `v ∈ kNN(u)`).
    None,
    /// Undirected union: edge iff `v ∈ kNN(u)` **or** `u ∈ kNN(v)` —
    /// the usual choice for manifold-learning graphs.
    Union,
    /// Mutual: edge iff `v ∈ kNN(u)` **and** `u ∈ kNN(v)` — sparser,
    /// robust to hubness.
    Mutual,
}

/// Convert an all-NN [`NeighborTable`] (row `i` = neighbors of point `i`)
/// into a graph. Sentinel entries are skipped; self-edges dropped.
pub fn from_table(table: &NeighborTable, sym: Symmetrize) -> CsrGraph {
    let n = table.len();
    let mut lists: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    for (u, list) in lists.iter_mut().enumerate() {
        for nb in table.row(u).iter().filter(|nb| nb.idx != u32::MAX) {
            list.push((nb.idx, nb.dist));
        }
    }
    match sym {
        Symmetrize::None => CsrGraph::from_adjacency(lists),
        Symmetrize::Union => {
            let mut out = lists.clone();
            for (u, list) in lists.iter().enumerate() {
                for &(v, w) in list {
                    out[v as usize].push((u as u32, w));
                }
            }
            CsrGraph::from_adjacency(out)
        }
        Symmetrize::Mutual => {
            let directed = CsrGraph::from_adjacency(lists);
            let mut out: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
            for (u, list) in out.iter_mut().enumerate() {
                for (&v, &w) in directed.neighbors(u).iter().zip(directed.weights(u)) {
                    if directed.has_edge(v as usize, u as u32) {
                        list.push((v, w));
                    }
                }
            }
            CsrGraph::from_adjacency(out)
        }
    }
}

/// Exact kNN graph via the GSKNN kernel (one all-against-all kernel
/// call): O(N²d) — fine up to a few tens of thousands of points.
///
/// ```
/// use knn_graph::{build_exact, Symmetrize};
/// use dataset::DistanceKind;
/// let x = dataset::uniform(100, 8, 1);
/// let g = build_exact(&x, 4, DistanceKind::SqL2, Symmetrize::Union);
/// assert_eq!(g.num_vertices(), 100);
/// assert!(g.is_symmetric());
/// ```
pub fn build_exact(x: &PointSet, k: usize, kind: DistanceKind, sym: Symmetrize) -> CsrGraph {
    let ids: Vec<usize> = (0..x.len()).collect();
    let mut exec = gsknn_core::Gsknn::new(GsknnConfig::default());
    // k+1 then strip self: the nearest neighbor of each point is itself
    let table = exec.run(x, &ids, &ids, k + 1, kind);
    from_table(&strip_self(&table), sym)
}

/// Approximate kNN graph via the randomized-KD-tree all-NN solver —
/// the scalable path (the paper's Table 1 pipeline feeding a graph).
pub fn build_with_forest(
    x: &PointSet,
    k: usize,
    kind: DistanceKind,
    sym: Symmetrize,
    cfg: RkdtConfig,
) -> CsrGraph {
    let (table, _) = AllNnSolver::new(cfg).solve(
        x,
        k + 1,
        || GsknnLeaf::new(GsknnConfig::default(), kind),
        None,
    );
    from_table(&strip_self(&table), sym)
}

/// Drop each row's self-match (if present) and shrink rows by one.
fn strip_self(table: &NeighborTable) -> NeighborTable {
    let k = table.k().saturating_sub(1);
    let mut out = NeighborTable::new(table.len(), k);
    for i in 0..table.len() {
        let row: Vec<knn_select::Neighbor> = table
            .row(i)
            .iter()
            .filter(|nb| nb.idx != i as u32 && nb.idx != u32::MAX)
            .take(k)
            .copied()
            .collect();
        out.set_row(i, &row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::uniform;

    #[test]
    fn exact_graph_shape() {
        let x = uniform(60, 5, 3);
        let g = build_exact(&x, 4, DistanceKind::SqL2, Symmetrize::None);
        assert_eq!(g.num_vertices(), 60);
        let (min, _, max) = g.degree_stats();
        assert_eq!((min, max), (4, 4), "every vertex has exactly k out-edges");
    }

    #[test]
    fn union_is_symmetric_mutual_is_subset() {
        let x = uniform(80, 6, 7);
        let union = build_exact(&x, 3, DistanceKind::SqL2, Symmetrize::Union);
        let mutual = build_exact(&x, 3, DistanceKind::SqL2, Symmetrize::Mutual);
        assert!(union.is_symmetric());
        assert!(mutual.is_symmetric());
        assert!(mutual.num_edges() <= union.num_edges());
        for u in 0..80 {
            for &v in mutual.neighbors(u) {
                assert!(union.has_edge(u, v), "mutual ⊄ union at {u}->{v}");
            }
        }
    }

    #[test]
    fn no_self_edges() {
        let x = uniform(40, 4, 9);
        let g = build_exact(&x, 5, DistanceKind::SqL2, Symmetrize::None);
        for u in 0..40 {
            assert!(!g.has_edge(u, u as u32));
        }
    }

    #[test]
    fn forest_graph_approximates_exact() {
        let x = dataset::gaussian_embedded(300, 12, 3, 5);
        let exact = build_exact(&x, 4, DistanceKind::SqL2, Symmetrize::None);
        let approx = build_with_forest(
            &x,
            4,
            DistanceKind::SqL2,
            Symmetrize::None,
            RkdtConfig {
                leaf_size: 64,
                iterations: 8,
                seed: 1,
                parallel_leaves: false,
                lpt_workers: None,
            },
        );
        // edge recall
        let mut hit = 0usize;
        let mut total = 0usize;
        for u in 0..300 {
            for &v in exact.neighbors(u) {
                total += 1;
                if approx.has_edge(u, v) {
                    hit += 1;
                }
            }
        }
        let recall = hit as f64 / total as f64;
        assert!(recall > 0.8, "edge recall {recall}");
    }

    #[test]
    fn l1_graph_differs_from_l2() {
        let x = uniform(100, 8, 11);
        let g2 = build_exact(&x, 3, DistanceKind::SqL2, Symmetrize::None);
        let g1 = build_exact(&x, 3, DistanceKind::L1, Symmetrize::None);
        assert_ne!(g1, g2);
    }
}
