//! Compressed-sparse-row adjacency with edge weights (distances).

/// A directed graph in CSR form: the out-neighbors of vertex `v` are
/// `cols[rowptr[v] .. rowptr[v+1]]` with weights `weights[..]` at the
/// same offsets. Neighbor lists are sorted by column id, with no
/// duplicates and no self-loops (enforced at construction).
#[derive(Clone, Debug, PartialEq)]
pub struct CsrGraph {
    rowptr: Vec<usize>,
    cols: Vec<u32>,
    weights: Vec<f64>,
}

impl CsrGraph {
    /// Build from per-vertex edge lists (`(target, weight)`); lists are
    /// sorted, deduplicated (first weight wins) and self-loops dropped.
    pub fn from_adjacency(lists: Vec<Vec<(u32, f64)>>) -> Self {
        let n = lists.len();
        let mut rowptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        let mut weights = Vec::new();
        rowptr.push(0);
        for (v, mut list) in lists.into_iter().enumerate() {
            list.sort_unstable_by_key(|a| a.0);
            let mut last: Option<u32> = None;
            for (c, w) in list {
                assert!((c as usize) < n, "edge target out of range");
                if c as usize == v || last == Some(c) {
                    continue;
                }
                cols.push(c);
                weights.push(w);
                last = Some(c);
            }
            rowptr.push(cols.len());
        }
        CsrGraph {
            rowptr,
            cols,
            weights,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.rowptr.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.cols.len()
    }

    /// Out-neighbors of `v` (sorted by id).
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.cols[self.rowptr[v]..self.rowptr[v + 1]]
    }

    /// Edge weights parallel to [`CsrGraph::neighbors`].
    #[inline]
    pub fn weights(&self, v: usize) -> &[f64] {
        &self.weights[self.rowptr[v]..self.rowptr[v + 1]]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.rowptr[v + 1] - self.rowptr[v]
    }

    /// `true` if the directed edge `u → v` exists (binary search).
    pub fn has_edge(&self, u: usize, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// (min, mean, max) out-degree.
    pub fn degree_stats(&self) -> (usize, f64, usize) {
        let n = self.num_vertices();
        if n == 0 {
            return (0, 0.0, 0);
        }
        let mut min = usize::MAX;
        let mut max = 0;
        for v in 0..n {
            let d = self.degree(v);
            min = min.min(d);
            max = max.max(d);
        }
        (min, self.num_edges() as f64 / n as f64, max)
    }

    /// `true` if for every edge `u → v` the reverse edge exists.
    pub fn is_symmetric(&self) -> bool {
        (0..self.num_vertices()).all(|u| {
            self.neighbors(u)
                .iter()
                .all(|&v| self.has_edge(v as usize, u as u32))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> CsrGraph {
        CsrGraph::from_adjacency(vec![vec![(1, 0.5), (2, 1.0)], vec![(0, 0.5)], vec![]])
    }

    #[test]
    fn basic_accessors() {
        let g = toy();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.weights(0), &[0.5, 1.0]);
        assert_eq!(g.degree(2), 0);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(2, 0));
    }

    #[test]
    fn drops_self_loops_and_duplicates() {
        let g = CsrGraph::from_adjacency(vec![vec![(0, 1.0), (1, 2.0), (1, 3.0)], vec![]]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.weights(0), &[2.0]);
    }

    #[test]
    fn symmetry_detection() {
        assert!(!toy().is_symmetric());
        let sym = CsrGraph::from_adjacency(vec![vec![(1, 1.0)], vec![(0, 1.0)]]);
        assert!(sym.is_symmetric());
    }

    #[test]
    fn degree_stats_shape() {
        let (min, mean, max) = toy().degree_stats();
        assert_eq!((min, max), (0, 2));
        assert!((mean - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_targets() {
        CsrGraph::from_adjacency(vec![vec![(5, 1.0)]]);
    }
}
