//! Connected components over the (symmetrized) kNN graph — the basic
//! primitive of hierarchical/density clustering on neighbor graphs.

use crate::csr::CsrGraph;

/// Per-vertex component labels (`0..num_components`), labels assigned in
/// order of first appearance (vertex 0's component is 0).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentLabels {
    labels: Vec<u32>,
    count: usize,
}

impl ComponentLabels {
    /// Component of vertex `v`.
    #[inline]
    pub fn label(&self, v: usize) -> u32 {
        self.labels[v]
    }

    /// Number of components.
    pub fn count(&self) -> usize {
        self.count
    }

    /// All labels.
    pub fn as_slice(&self) -> &[u32] {
        &self.labels
    }

    /// Size of each component.
    pub fn sizes(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.count];
        for &l in &self.labels {
            out[l as usize] += 1;
        }
        out
    }
}

/// Weakly connected components via union-find with path halving and
/// union by size (edges are treated as undirected regardless of the
/// graph's symmetry).
pub fn connected_components(g: &CsrGraph) -> ComponentLabels {
    let n = g.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    let mut size = vec![1u32; n];

    fn find(parent: &mut [u32], mut v: u32) -> u32 {
        while parent[v as usize] != v {
            let gp = parent[parent[v as usize] as usize];
            parent[v as usize] = gp; // path halving
            v = gp;
        }
        v
    }

    for u in 0..n {
        for &v in g.neighbors(u) {
            let ru = find(&mut parent, u as u32);
            let rv = find(&mut parent, v);
            if ru != rv {
                // union by size
                let (big, small) = if size[ru as usize] >= size[rv as usize] {
                    (ru, rv)
                } else {
                    (rv, ru)
                };
                parent[small as usize] = big;
                size[big as usize] += size[small as usize];
            }
        }
    }

    let mut labels = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n {
        let root = find(&mut parent, v as u32) as usize;
        if labels[root] == u32::MAX {
            labels[root] = next;
            next += 1;
        }
        labels[v] = labels[root];
    }
    ComponentLabels {
        labels,
        count: next as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn graph(edges: &[(u32, u32)], n: usize) -> CsrGraph {
        let mut lists: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            lists[u as usize].push((v, 1.0));
        }
        CsrGraph::from_adjacency(lists)
    }

    #[test]
    fn two_triangles() {
        let g = graph(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5)], 6);
        let c = connected_components(&g);
        assert_eq!(c.count(), 2);
        assert_eq!(c.label(0), c.label(2));
        assert_eq!(c.label(3), c.label(5));
        assert_ne!(c.label(0), c.label(3));
        assert_eq!(c.sizes(), vec![3, 3]);
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let g = graph(&[], 4);
        let c = connected_components(&g);
        assert_eq!(c.count(), 4);
        assert_eq!(c.sizes(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn directed_edges_connect_weakly() {
        // only u -> v, no reverse: still one component
        let g = graph(&[(0, 1)], 2);
        assert_eq!(connected_components(&g).count(), 1);
    }

    proptest! {
        #[test]
        fn labels_are_consistent_with_reachability(
            edges in prop::collection::vec((0u32..20, 0u32..20), 0..60)
        ) {
            let g = graph(&edges, 20);
            let c = connected_components(&g);
            // every edge's endpoints share a label
            for u in 0..20usize {
                for &v in g.neighbors(u) {
                    prop_assert_eq!(c.label(u), c.label(v as usize));
                }
            }
            // label count equals number of distinct labels, contiguous
            let mut seen: Vec<u32> = c.as_slice().to_vec();
            seen.sort_unstable();
            seen.dedup();
            prop_assert_eq!(seen.len(), c.count());
            prop_assert_eq!(seen, (0..c.count() as u32).collect::<Vec<_>>());
        }
    }
}
