//! k-nearest-neighbor graphs.
//!
//! The paper motivates the all-nearest-neighbor problem with the
//! "construction of nearest-neighbor graphs for manifold learning,
//! hierarchical clustering, kernel machines" (§1). This crate closes that
//! loop: it turns a [`NeighborTable`](knn_select::NeighborTable) — exact
//! (brute force) or approximate (the rkdt/LSH solvers) — into a compact
//! CSR graph, with the standard post-processing those applications need:
//! symmetrization (union or mutual), connected components, and degree
//! statistics.

mod build;
mod components;
mod csr;

pub use build::{build_exact, build_with_forest, from_table, Symmetrize};
pub use components::{connected_components, ComponentLabels};
pub use csr::CsrGraph;
