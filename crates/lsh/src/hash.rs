//! The E2LSH hash family for Euclidean distance: `h(x) = ⌊(aᵀx + b)/w⌋`
//! with `a ~ N(0, I)` and `b ~ U[0, w)`. Close points collide with high
//! probability; a table concatenates `K` such hashes to sharpen
//! selectivity.

use dataset::PointSet;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Parameters of one hash family instantiation.
#[derive(Clone, Debug)]
pub struct LshParams {
    /// Concatenated hashes per table (`K`).
    pub hashes_per_table: usize,
    /// Quantization width (`w`) — wider buckets collide more.
    pub bucket_width: f64,
}

impl Default for LshParams {
    fn default() -> Self {
        LshParams {
            hashes_per_table: 4,
            bucket_width: 1.0,
        }
    }
}

/// One LSH table: `K` random projections and the resulting buckets.
pub struct HashTable {
    /// Projection directions, row-major `K × d`.
    dirs: Vec<f64>,
    /// Offsets `b`, length `K`.
    offsets: Vec<f64>,
    width: f64,
    k_hashes: usize,
    d: usize,
}

impl HashTable {
    /// Fresh table with directions drawn from the given seed.
    pub fn new(d: usize, params: &LshParams, seed: u64) -> Self {
        assert!(params.bucket_width > 0.0, "bucket width must be positive");
        assert!(params.hashes_per_table >= 1, "need at least one hash");
        let mut rng = SmallRng::seed_from_u64(seed);
        let k = params.hashes_per_table;
        // sum of 8 uniforms, centered and rescaled to unit variance — a
        // fine Gaussian surrogate for projection directions (`rand_distr`
        // is not in the allowed crate set)
        let dirs: Vec<f64> = (0..k * d)
            .map(|_| {
                let s: f64 = (0..8).map(|_| rng.gen::<f64>() - 0.5).sum();
                s * (12.0f64 / 8.0).sqrt()
            })
            .collect();
        let offsets: Vec<f64> = (0..k)
            .map(|_| rng.gen::<f64>() * params.bucket_width)
            .collect();
        HashTable {
            dirs,
            offsets,
            width: params.bucket_width,
            k_hashes: k,
            d,
        }
    }

    /// The concatenated hash key of one point.
    pub fn key(&self, point: &[f64]) -> Vec<i64> {
        debug_assert_eq!(point.len(), self.d);
        (0..self.k_hashes)
            .map(|h| {
                let dir = &self.dirs[h * self.d..(h + 1) * self.d];
                let proj: f64 = dir.iter().zip(point).map(|(a, b)| a * b).sum();
                ((proj + self.offsets[h]) / self.width).floor() as i64
            })
            .collect()
    }

    /// Bucket every point of `x`: returns the bucket membership lists.
    /// Singleton buckets are dropped (a lone point gains nothing from an
    /// exact self-search).
    pub fn buckets(&self, x: &PointSet) -> Vec<Vec<usize>> {
        self.buckets_multiprobe(x, 0)
            .into_iter()
            .map(|(q, _)| q)
            .collect()
    }

    /// Multi-probe bucketing: each bucket's *queries* are its own members
    /// (disjoint across buckets, so parallel row updates stay race-free),
    /// but its *references* additionally include the members of the
    /// neighboring buckets whose key differs by ±1 in one of the first
    /// `probes` hash coordinates — the standard multi-probe LSH recall
    /// boost (more candidates per table instead of more tables), adapted
    /// to the bucket-at-a-time kernel solve.
    ///
    /// Returns `(queries, references)` pairs; with `probes = 0` the two
    /// sides are equal.
    pub fn buckets_multiprobe(&self, x: &PointSet, probes: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
        let mut map: HashMap<Vec<i64>, Vec<usize>> = HashMap::new();
        for i in 0..x.len() {
            map.entry(self.key(x.point(i))).or_default().push(i);
        }
        let probes = probes.min(self.k_hashes);
        let mut keys: Vec<&Vec<i64>> = map.keys().collect();
        keys.sort_unstable(); // deterministic order
        let mut out = Vec::new();
        for key in keys {
            let members = &map[key];
            let mut refs = members.clone();
            for h in 0..probes {
                for delta in [-1i64, 1] {
                    let mut probe = key.clone();
                    probe[h] += delta;
                    if let Some(extra) = map.get(&probe) {
                        refs.extend_from_slice(extra);
                    }
                }
            }
            if refs.len() >= 2 {
                refs.sort_unstable();
                out.push((members.clone(), refs));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::uniform;

    #[test]
    fn identical_points_always_collide() {
        let x = uniform(1, 8, 3);
        let t = HashTable::new(8, &LshParams::default(), 42);
        assert_eq!(t.key(x.point(0)), t.key(x.point(0)));
    }

    #[test]
    fn buckets_cover_only_non_singletons() {
        let x = uniform(200, 4, 9);
        let t = HashTable::new(
            4,
            &LshParams {
                hashes_per_table: 2,
                bucket_width: 0.5,
            },
            7,
        );
        let buckets = t.buckets(&x);
        assert!(!buckets.is_empty());
        for b in &buckets {
            assert!(b.len() >= 2);
            assert!(b.iter().all(|&i| i < 200));
        }
    }

    #[test]
    fn close_points_collide_more_than_far_ones() {
        // two tight clusters far apart: within-cluster pairs should share
        // buckets far more often than cross-cluster pairs
        let mut data = Vec::new();
        for i in 0..40 {
            let eps = (i as f64) * 1e-3;
            if i < 20 {
                data.extend_from_slice(&[eps, 0.0]);
            } else {
                data.extend_from_slice(&[100.0 + eps, 100.0]);
            }
        }
        let x = dataset::PointSet::from_vec(2, 40, data);
        let mut within = 0;
        let mut across = 0;
        for seed in 0..20u64 {
            let t = HashTable::new(2, &LshParams::default(), seed);
            let k0 = t.key(x.point(0));
            if t.key(x.point(10)) == k0 {
                within += 1;
            }
            if t.key(x.point(30)) == k0 {
                across += 1;
            }
        }
        assert!(within > across, "within={within} across={across}");
        assert_eq!(across, 0);
    }

    #[test]
    fn wider_buckets_collide_more() {
        let x = uniform(300, 6, 5);
        let narrow = HashTable::new(
            6,
            &LshParams {
                hashes_per_table: 3,
                bucket_width: 0.1,
            },
            1,
        );
        let wide = HashTable::new(
            6,
            &LshParams {
                hashes_per_table: 3,
                bucket_width: 10.0,
            },
            1,
        );
        let covered = |bs: &Vec<Vec<usize>>| bs.iter().map(|b| b.len()).sum::<usize>();
        assert!(covered(&wide.buckets(&x)) > covered(&narrow.buckets(&x)));
    }
}
