//! Locality-sensitive hashing for the all-nearest-neighbor problem — the
//! second approximate outer solver GSKNN was integrated with (refs
//! \[21, 34\]; hashing-based search per Andoni & Indyk, ref \[2\]).
//!
//! E2LSH-style Euclidean hashing: each table hashes a point with `K`
//! concatenated quantized random projections
//! `h(x) = ⌊(aᵀx + b) / w⌋`; points sharing all `K` values land in the
//! same bucket. For all-NN, every bucket is an exact kNN kernel problem
//! (queries = references = the bucket), solved by the plugged-in
//! [`LeafKernel`], and results accumulate in the global neighbor table
//! across `L` independent tables — structurally identical to the
//! randomized-KD-tree iteration, with buckets instead of leaves.

mod hash;
mod solver;

pub use hash::{HashTable, LshParams};
pub use rkdt::LeafKernel;
pub use solver::{LshConfig, LshSolver, TableStats};
