//! The LSH all-NN driver: `L` tables, each bucketing all points and
//! solving every bucket exactly with the plugged-in kernel.
//!
//! Unlike the KD-tree's leaves, buckets of one table are disjoint (a
//! point has one key per table), so per-table updates are race-free and
//! parallelize over buckets exactly like the tree solver's leaves.

use crate::hash::{HashTable, LshParams};
use dataset::PointSet;
use knn_select::NeighborTable;
use rayon::prelude::*;
use rkdt::LeafKernel;

/// Solver configuration.
#[derive(Clone, Debug)]
pub struct LshConfig {
    /// Number of independent hash tables (`L`).
    pub tables: usize,
    /// Hash family parameters (shared by all tables).
    pub params: LshParams,
    /// Base seed (table `t` uses `seed + t`).
    pub seed: u64,
    /// Solve buckets in parallel.
    pub parallel_buckets: bool,
    /// Split buckets larger than this into chunks (keeps kernel problems
    /// kernel-sized; 0 = unbounded).
    pub max_bucket: usize,
    /// Multi-probe: also search the buckets whose key differs by ±1 in
    /// one of the first `probes` hash coordinates (0 = classic LSH).
    /// Boosts recall per table at the cost of larger reference sets.
    pub probes: usize,
}

impl Default for LshConfig {
    fn default() -> Self {
        LshConfig {
            tables: 8,
            params: LshParams::default(),
            seed: 0xA5A5,
            parallel_buckets: true,
            max_bucket: 8192,
            probes: 0,
        }
    }
}

/// Per-table progress record.
#[derive(Clone, Copy, Debug)]
pub struct TableStats {
    /// Table index.
    pub table: usize,
    /// Buckets solved.
    pub buckets: usize,
    /// Points covered by ≥2-element buckets.
    pub covered: usize,
    /// Recall against the exact table, when one was supplied.
    pub recall: Option<f64>,
}

/// The LSH all-nearest-neighbor solver.
pub struct LshSolver {
    cfg: LshConfig,
}

impl LshSolver {
    /// Solver with the given configuration.
    pub fn new(cfg: LshConfig) -> Self {
        LshSolver { cfg }
    }

    /// Run all tables; `make_kernel` produces one kernel per worker.
    pub fn solve<K, F>(
        &self,
        x: &PointSet,
        k: usize,
        make_kernel: F,
        exact: Option<&NeighborTable>,
    ) -> (NeighborTable, Vec<TableStats>)
    where
        K: LeafKernel,
        F: Fn() -> K + Sync,
    {
        let n = x.len();
        let mut table = NeighborTable::new(n, k);
        let mut stats = Vec::with_capacity(self.cfg.tables);

        for t in 0..self.cfg.tables {
            let ht = HashTable::new(x.dim(), &self.cfg.params, self.cfg.seed + t as u64);
            let mut buckets = ht.buckets_multiprobe(x, self.cfg.probes);
            if self.cfg.max_bucket >= 2 {
                buckets = split_large(buckets, self.cfg.max_bucket);
            }
            let covered: usize = buckets.iter().map(|(q, _)| q.len()).sum();

            let solve_bucket =
                |(ids, refs): &(Vec<usize>, Vec<usize>)| -> (Vec<usize>, NeighborTable) {
                    let mut local = NeighborTable::new(ids.len(), k);
                    for (row, &id) in ids.iter().enumerate() {
                        local.set_row(row, table.row(id));
                    }
                    let mut kernel = make_kernel();
                    kernel.update_bucket(x, ids, refs, &mut local);
                    (ids.clone(), local)
                };
            let results: Vec<(Vec<usize>, NeighborTable)> = if self.cfg.parallel_buckets {
                buckets.par_iter().map(solve_bucket).collect()
            } else {
                buckets.iter().map(solve_bucket).collect()
            };
            for (ids, local) in results {
                for (row, id) in ids.into_iter().enumerate() {
                    table.set_row(id, local.row(row));
                }
            }
            stats.push(TableStats {
                table: t,
                buckets: buckets.len(),
                covered,
                recall: exact.map(|e| table.recall_against(e)),
            });
        }
        (table, stats)
    }
}

/// Chop the *query side* of oversized buckets into `max`-sized chunks
/// (references are shared; query disjointness within a table is
/// preserved).
fn split_large(
    buckets: Vec<(Vec<usize>, Vec<usize>)>,
    max: usize,
) -> Vec<(Vec<usize>, Vec<usize>)> {
    buckets
        .into_iter()
        .flat_map(|(q, r)| {
            q.chunks(max)
                .map(|c| (c.to_vec(), r.clone()))
                .collect::<Vec<_>>()
        })
        .filter(|(_, r)| r.len() >= 2)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{gaussian_embedded, DistanceKind};
    use gsknn_core::GsknnConfig;
    use knn_ref::oracle;
    use rkdt::{AllNnSolver, GsknnLeaf};

    fn mk() -> impl Fn() -> GsknnLeaf + Sync {
        || GsknnLeaf::new(GsknnConfig::default(), DistanceKind::SqL2)
    }

    #[test]
    fn recall_is_monotone_over_tables() {
        let x = gaussian_embedded(300, 16, 3, 13);
        let ids: Vec<usize> = (0..300).collect();
        let exact = oracle::exact(&x, &ids, &ids, 4, DistanceKind::SqL2);
        let cfg = LshConfig {
            tables: 6,
            params: LshParams {
                hashes_per_table: 2,
                bucket_width: 2.0,
            },
            seed: 5,
            parallel_buckets: false,
            max_bucket: 128,
            probes: 0,
        };
        let (_, stats) = LshSolver::new(cfg).solve(&x, 4, mk(), Some(&exact));
        let recalls: Vec<f64> = stats.iter().map(|s| s.recall.unwrap()).collect();
        for w in recalls.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "recall regressed: {recalls:?}");
        }
        assert!(*recalls.last().unwrap() > 0.3, "poor recall: {recalls:?}");
    }

    #[test]
    fn buckets_split_respects_max() {
        let members: Vec<usize> = (0..100).collect();
        let big = vec![(members.clone(), members)];
        let split = split_large(big, 30);
        assert!(split.iter().all(|(q, _)| q.len() <= 30));
        assert!(split.iter().all(|(_, r)| r.len() == 100), "refs shared");
        let total: usize = split.iter().map(|(q, _)| q.len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn multiprobe_improves_recall() {
        let x = gaussian_embedded(400, 16, 4, 99);
        let ids: Vec<usize> = (0..400).collect();
        let exact = oracle::exact(&x, &ids, &ids, 4, DistanceKind::SqL2);
        let run = |probes: usize| {
            let cfg = LshConfig {
                tables: 3,
                params: LshParams {
                    hashes_per_table: 4,
                    bucket_width: 1.0,
                },
                seed: 5,
                parallel_buckets: false,
                max_bucket: 0,
                probes,
            };
            let (_, stats) = LshSolver::new(cfg).solve(&x, 4, mk(), Some(&exact));
            stats.last().unwrap().recall.unwrap()
        };
        let plain = run(0);
        let probed = run(4);
        assert!(
            probed > plain,
            "multiprobe should raise recall: {plain} -> {probed}"
        );
    }

    #[test]
    fn parallel_matches_serial() {
        let x = gaussian_embedded(200, 12, 2, 31);
        let base = LshConfig {
            tables: 3,
            params: LshParams::default(),
            seed: 17,
            parallel_buckets: false,
            max_bucket: 64,
            probes: 0,
        };
        let (a, _) = LshSolver::new(base.clone()).solve(&x, 3, mk(), None);
        let par = LshConfig {
            parallel_buckets: true,
            ..base
        };
        let (b, _) = LshSolver::new(par).solve(&x, 3, mk(), None);
        for i in 0..200 {
            assert_eq!(a.row(i), b.row(i), "row {i}");
        }
    }

    #[test]
    fn composes_with_tree_solver() {
        // LSH tables then KD-tree refinement on the same neighbor table:
        // recall must only improve (the solvers share the update
        // contract, so they compose).
        let x = gaussian_embedded(250, 16, 3, 41);
        let ids: Vec<usize> = (0..250).collect();
        let exact = oracle::exact(&x, &ids, &ids, 4, DistanceKind::SqL2);
        let (lsh_table, lsh_stats) = LshSolver::new(LshConfig {
            tables: 2,
            params: LshParams {
                hashes_per_table: 2,
                bucket_width: 1.0,
            },
            seed: 3,
            parallel_buckets: false,
            max_bucket: 64,
            probes: 0,
        })
        .solve(&x, 4, mk(), Some(&exact));
        let lsh_recall = lsh_stats.last().unwrap().recall.unwrap();
        let tree = AllNnSolver::new(rkdt::RkdtConfig {
            leaf_size: 64,
            iterations: 3,
            seed: 7,
            parallel_leaves: false,
            lpt_workers: None,
        });
        let (refined, tree_stats) = tree.solve_from(&x, lsh_table, mk(), Some(&exact));
        let final_recall = tree_stats.last().unwrap().recall.unwrap();
        assert!(
            final_recall >= lsh_recall,
            "refinement dropped recall: {lsh_recall} -> {final_recall}"
        );
        assert!(
            final_recall > 0.6,
            "combined recall too low: {final_recall}"
        );
        assert_eq!(refined.len(), 250);
    }
}
