//! Plain-text point-set I/O: one point per line, coordinates separated
//! by commas. Human-greppable and adequate for the CLI's scale; the
//! in-memory representation stays column-major.

use crate::PointSet;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// Write `x` as CSV (one row per point).
pub fn save_csv(x: &PointSet, path: &Path) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    let mut line = String::new();
    for j in 0..x.len() {
        line.clear();
        for (p, v) in x.point(j).iter().enumerate() {
            if p > 0 {
                line.push(',');
            }
            // enough digits to round-trip f64 exactly
            write!(line, "{v:.17e}").expect("string write");
        }
        line.push('\n');
        f.write_all(line.as_bytes())?;
    }
    Ok(())
}

/// Read a CSV point set (all rows must have the same arity; blank lines
/// skipped). Errors on parse failure or ragged rows.
pub fn load_csv(path: &Path) -> std::io::Result<PointSet> {
    let f = BufReader::new(std::fs::File::open(path)?);
    let mut data: Vec<f64> = Vec::new();
    let mut d: Option<usize> = None;
    let mut n = 0usize;
    for (lineno, line) in f.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        let row: Result<Vec<f64>, _> = t.split(',').map(|v| v.trim().parse::<f64>()).collect();
        let row = row.map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        })?;
        match d {
            None => d = Some(row.len()),
            Some(d0) if d0 != row.len() => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "line {}: expected {} columns, got {}",
                        lineno + 1,
                        d0,
                        row.len()
                    ),
                ));
            }
            _ => {}
        }
        data.extend(row);
        n += 1;
    }
    let d = d.unwrap_or(0);
    Ok(PointSet::from_vec(d, n, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("gsknn-io-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn round_trip_exact() {
        let x = uniform(37, 5, 77);
        let p = tmp("roundtrip.csv");
        save_csv(&x, &p).unwrap();
        let y = load_csv(&p).unwrap();
        assert_eq!(x.as_slice(), y.as_slice());
        assert_eq!(y.dim(), 5);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn ragged_rows_rejected() {
        let p = tmp("ragged.csv");
        std::fs::write(&p, "1,2,3\n4,5\n").unwrap();
        let err = load_csv(&p).unwrap_err();
        assert!(err.to_string().contains("expected 3 columns"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn garbage_rejected() {
        let p = tmp("garbage.csv");
        std::fs::write(&p, "1,banana\n").unwrap();
        assert!(load_csv(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_file_is_empty_set() {
        let p = tmp("empty.csv");
        std::fs::write(&p, "\n\n").unwrap();
        let x = load_csv(&p).unwrap();
        assert!(x.is_empty());
        std::fs::remove_file(&p).ok();
    }
}
