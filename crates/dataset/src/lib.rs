//! Datasets for the GSKNN reproduction: the column-major coordinate table
//! `X` of Table 2 ([`PointSet`]), the synthetic generators used in the
//! paper's experiments (§3 "Dataset"), and scalar distance functions that
//! serve as the single source of truth for every kernel in the workspace.

mod colmajor;
pub mod io;
mod metrics;
mod synthetic;

pub use colmajor::PointSet;
pub use metrics::{dist_cosine, dist_l1, dist_linf, dist_lp, dist_sq_l2, DistanceKind};
pub use synthetic::{gaussian_embedded, swiss_roll, uniform, uniform_with};
