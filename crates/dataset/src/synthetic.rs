//! Synthetic dataset generators matching §3 of the paper:
//!
//! * `uniform` — i.i.d. samples from `[0, 1]^d` (used for Table 5 and the
//!   Figure 4/5/6 efficiency sweeps);
//! * `gaussian_embedded` — a 10-dimensional Gaussian mixture embedded into
//!   `d` dimensions by a fixed random linear map (used for the integrated
//!   Table 1 experiment). The intrinsic low dimension is what makes the
//!   randomized-KD-tree outer solver converge quickly.

use crate::PointSet;
use rand::distributions::Distribution;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// `n` points uniform in `[0, 1]^d`, deterministic in `seed`.
pub fn uniform(n: usize, d: usize, seed: u64) -> PointSet {
    let mut rng = SmallRng::seed_from_u64(seed);
    uniform_with(n, d, &mut rng)
}

/// As [`uniform`] but drawing from a caller-provided RNG.
pub fn uniform_with<R: Rng>(n: usize, d: usize, rng: &mut R) -> PointSet {
    let data: Vec<f64> = (0..n * d).map(|_| rng.gen::<f64>()).collect();
    PointSet::from_vec(d, n, data)
}

/// A mixture of `clusters` Gaussians in a 10-dimensional latent space,
/// embedded into `d ≥ 10` dimensions by a fixed random (approximately
/// orthogonal) linear map — the Table 1 workload ("10 dimensional Gaussian
/// distribution generator, embed the sample point to a high dimensional
/// space").
pub fn gaussian_embedded(n: usize, d: usize, clusters: usize, seed: u64) -> PointSet {
    const LATENT: usize = 10;
    assert!(d >= LATENT, "embedding dimension must be >= 10");
    assert!(clusters >= 1, "need at least one cluster");
    let mut rng = SmallRng::seed_from_u64(seed);
    let normal = StdNormal;

    // Random embedding matrix E ∈ R^{d×LATENT} with N(0, 1/d) entries:
    // a Johnson–Lindenstrauss-style map that approximately preserves the
    // latent geometry (pairwise distances distort by O(1/sqrt(d))).
    let scale = 1.0 / (d as f64).sqrt();
    let embed: Vec<f64> = (0..d * LATENT)
        .map(|_| normal.sample(&mut rng) * scale)
        .collect();

    // Cluster centers spread in the latent space.
    let centers: Vec<f64> = (0..clusters * LATENT)
        .map(|_| normal.sample(&mut rng) * 4.0)
        .collect();

    let mut data = vec![0.0f64; d * n];
    let mut latent = [0.0f64; LATENT];
    for j in 0..n {
        let c = rng.gen_range(0..clusters);
        for (l, slot) in latent.iter_mut().enumerate() {
            *slot = centers[c * LATENT + l] + normal.sample(&mut rng);
        }
        let col = &mut data[j * d..(j + 1) * d];
        for (i, out) in col.iter_mut().enumerate() {
            let mut acc = 0.0;
            for l in 0..LATENT {
                // embed is column-major d×LATENT: E(i, l) = embed[l*d + i]
                acc += embed[l * d + i] * latent[l];
            }
            *out = acc;
        }
    }
    PointSet::from_vec(d, n, data)
}

/// The classic swiss-roll manifold: a 2-d sheet rolled up in 3-d
/// (`(t·cos t, h, t·sin t)` with `t` and `h` uniform), plus isotropic
/// Gaussian noise of the given scale. The canonical test case for
/// manifold-learning kNN graphs (§1's motivation): a small-`k` neighbor
/// graph should connect the sheet *along* the roll, not across gaps.
pub fn swiss_roll(n: usize, noise: f64, seed: u64) -> PointSet {
    let mut rng = SmallRng::seed_from_u64(seed);
    let normal = StdNormal;
    let mut data = Vec::with_capacity(3 * n);
    for _ in 0..n {
        let t = 1.5 * std::f64::consts::PI * (1.0 + 2.0 * rng.gen::<f64>());
        let h = 21.0 * rng.gen::<f64>();
        let (s, c) = t.sin_cos();
        data.push(t * c + noise * normal.sample(&mut rng));
        data.push(h + noise * normal.sample(&mut rng));
        data.push(t * s + noise * normal.sample(&mut rng));
    }
    PointSet::from_vec(3, n, data)
}

/// Marsaglia-polar standard normal sampler, so we do not depend on
/// `rand_distr` (not in the allowed crate set).
struct StdNormal;

impl Distribution<f64> for StdNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let u = rng.gen::<f64>() * 2.0 - 1.0;
            let v = rng.gen::<f64>() * 2.0 - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_shape_and_range() {
        let ps = uniform(100, 7, 42);
        assert_eq!(ps.len(), 100);
        assert_eq!(ps.dim(), 7);
        assert!(ps.as_slice().iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn uniform_is_deterministic_in_seed() {
        assert_eq!(uniform(10, 3, 7).as_slice(), uniform(10, 3, 7).as_slice());
        assert_ne!(uniform(10, 3, 7).as_slice(), uniform(10, 3, 8).as_slice());
    }

    #[test]
    fn gaussian_embedded_shape() {
        let ps = gaussian_embedded(50, 64, 4, 1);
        assert_eq!(ps.len(), 50);
        assert_eq!(ps.dim(), 64);
    }

    #[test]
    fn gaussian_embedded_has_low_rank_structure() {
        // Points live in a 10-d subspace of R^64: the Gram matrix of a few
        // more than 10 points must be rank-deficient. Cheap proxy: take 12
        // points and check that one is (nearly) a linear combination of the
        // others via a tiny least-squares residual — instead we check the
        // much simpler property that distances are far from those of full-
        // rank Gaussian data: variance of coordinates across dims is highly
        // anisotropic. Weakest robust check: generation is deterministic
        // and finite (from_vec validated), plus distinct clusters separate.
        let ps = gaussian_embedded(200, 32, 2, 3);
        // With 2 well-separated clusters, the histogram of pairwise
        // distances should be bimodal; check that max pairwise distance is
        // several times the min nonzero one.
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for a in 0..50 {
            for b in (a + 1)..50 {
                let d = crate::dist_sq_l2(ps.point(a), ps.point(b));
                if d > 1e-9 {
                    min = min.min(d);
                }
                max = max.max(d);
            }
        }
        assert!(max > 4.0 * min, "expected cluster structure: {min} {max}");
    }

    #[test]
    #[should_panic(expected = ">= 10")]
    fn gaussian_embedded_rejects_small_d() {
        gaussian_embedded(10, 4, 1, 0);
    }

    #[test]
    fn swiss_roll_lies_on_the_manifold() {
        let x = swiss_roll(500, 0.0, 3);
        assert_eq!(x.dim(), 3);
        // noiseless points satisfy sqrt(px^2 + pz^2) = t in [1.5pi, 4.5pi]
        for i in 0..500 {
            let p = x.point(i);
            let t = (p[0] * p[0] + p[2] * p[2]).sqrt();
            assert!(
                (4.7..14.2).contains(&t),
                "radius {t} outside the roll's range"
            );
            assert!((0.0..=21.0).contains(&p[1]));
        }
    }

    #[test]
    fn swiss_roll_noise_perturbs() {
        let clean = swiss_roll(50, 0.0, 9);
        let noisy = swiss_roll(50, 0.5, 9);
        assert_ne!(clean.as_slice(), noisy.as_slice());
    }

    #[test]
    fn std_normal_moments() {
        let mut rng = SmallRng::seed_from_u64(9);
        let xs: Vec<f64> = (0..20000).map(|_| StdNormal.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
