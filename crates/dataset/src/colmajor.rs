//! The global coordinate table `X ∈ R^{d×N}` of Table 2, stored
//! column-major so each point's `d` coordinates are contiguous, together
//! with the precomputed squared 2-norms `X2(i) = ‖x_i‖²`. Generic over the
//! coordinate scalar ([`GsknnScalar`]) with `f64` as the default; the f32
//! kernel path consumes `PointSet<f32>` (usually produced by
//! [`PointSet::cast`] from an f64 generator).

use gsknn_scalar::GsknnScalar;

/// Column-major `d × N` point set with cached squared norms.
///
/// This is the "general stride" input of GSKNN: kernels receive a
/// `PointSet` plus index slices `q`/`r` naming which columns participate,
/// and gather-pack straight from here (§2.3 "Packing") instead of first
/// materializing dense `Q`/`R` matrices.
///
/// ```
/// use dataset::PointSet;
/// // two points in 3-d: (1,0,0) and (0,2,0)
/// let x = PointSet::from_vec(3, 2, vec![1.0, 0.0, 0.0, 0.0, 2.0, 0.0]);
/// assert_eq!(x.point(1), &[0.0, 2.0, 0.0]);
/// assert_eq!(x.sqnorm(1), 4.0); // cached X2 table
/// ```
#[derive(Clone, Debug)]
pub struct PointSet<T: GsknnScalar = f64> {
    d: usize,
    n: usize,
    /// Point `j` occupies `data[j*d .. (j+1)*d]`.
    data: Vec<T>,
    /// `sqnorms[j] = ‖x_j‖²` — the `X2` table.
    sqnorms: Vec<T>,
}

impl<T: GsknnScalar> PointSet<T> {
    /// Wrap a column-major buffer (`data.len() == d * n`); computes `X2`.
    ///
    /// # Panics
    /// If the buffer length does not match, or any coordinate is non-finite
    /// (NaN/±∞ coordinates would poison every distance comparison, so they
    /// are rejected once here instead of being checked in the hot loops).
    pub fn from_vec(d: usize, n: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), d * n, "buffer is not d*n long");
        assert!(
            data.iter().all(|x| x.is_finite()),
            "non-finite coordinate in point set"
        );
        let sqnorms = (0..n)
            .map(|j| {
                data[j * d..(j + 1) * d]
                    .iter()
                    .fold(T::ZERO, |acc, &x| acc + x * x)
            })
            .collect();
        PointSet {
            d,
            n,
            data,
            sqnorms,
        }
    }

    /// Dimension `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Number of points `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the set holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Coordinates of point `j` (`X(:, j)`).
    #[inline(always)]
    pub fn point(&self, j: usize) -> &[T] {
        &self.data[j * self.d..(j + 1) * self.d]
    }

    /// A `dc`-long slice of point `j` starting at coordinate `pc`
    /// (`X(pc:pc+dc-1, j)`) — what the 5th loop packs.
    #[inline(always)]
    pub fn point_slab(&self, j: usize, pc: usize, dc: usize) -> &[T] {
        debug_assert!(pc + dc <= self.d);
        &self.data[j * self.d + pc..j * self.d + pc + dc]
    }

    /// `X2(j) = ‖x_j‖²`.
    #[inline(always)]
    pub fn sqnorm(&self, j: usize) -> T {
        self.sqnorms[j]
    }

    /// The raw column-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The full `X2` table.
    #[inline]
    pub fn sqnorms(&self) -> &[T] {
        &self.sqnorms
    }

    /// Gather a dense column-major `d × idx.len()` matrix `X(:, idx)` —
    /// the explicit collection step of the GEMM approach (Algorithm 2.1),
    /// which GSKNN avoids.
    pub fn gather(&self, idx: &[usize]) -> Vec<T> {
        let mut out = Vec::with_capacity(self.d * idx.len());
        for &j in idx {
            out.extend_from_slice(self.point(j));
        }
        out
    }

    /// Append points (column-major, `coords.len()` a multiple of `d`),
    /// returning the id range they received. Existing ids are stable —
    /// the streaming all-NN maintainer relies on this (§1: "frequent
    /// updates of X").
    ///
    /// # Panics
    /// On a ragged buffer or non-finite coordinates.
    pub fn append(&mut self, coords: &[T]) -> std::ops::Range<usize> {
        assert!(self.d > 0, "cannot append to a 0-dimensional set");
        assert_eq!(
            coords.len() % self.d,
            0,
            "buffer is not a whole number of points"
        );
        assert!(
            coords.iter().all(|x| x.is_finite()),
            "non-finite coordinate in appended points"
        );
        let added = coords.len() / self.d;
        let start = self.n;
        self.data.extend_from_slice(coords);
        self.sqnorms.extend(
            coords
                .chunks_exact(self.d)
                .map(|p| p.iter().fold(T::ZERO, |acc, &x| acc + x * x)),
        );
        self.n += added;
        start..self.n
    }

    /// Drop all points but keep the dimension and the backing storage —
    /// observably identical to `from_vec(d, 0, Vec::new())`, except that
    /// a set cycled through a serving workspace stops allocating once it
    /// has seen its largest batch.
    pub fn clear(&mut self) {
        self.n = 0;
        self.data.clear();
        self.sqnorms.clear();
    }

    /// Append `n_points` points whose coordinates arrive as a stream of
    /// `f64` values (column-major, `n_points * d` of them), converting
    /// each to `T` — the wire-decode path lands coordinates here straight
    /// out of the request frame without an intermediate `Vec`. Returns
    /// the id range the points received.
    ///
    /// # Panics
    /// If the stream does not yield exactly `n_points * d` values, or any
    /// converted coordinate is non-finite in `T` (callers validating at a
    /// wider precision must also reject values that overflow `T`).
    pub fn append_from_f64(
        &mut self,
        n_points: usize,
        coords: impl Iterator<Item = f64>,
    ) -> std::ops::Range<usize> {
        assert!(self.d > 0, "cannot append to a 0-dimensional set");
        let start = self.n;
        let want = n_points * self.d;
        self.data.reserve(want);
        self.sqnorms.reserve(n_points);
        let mut got = 0usize;
        let mut acc = T::ZERO;
        for wide in coords.take(want) {
            let x = T::from_f64(wide);
            assert!(x.is_finite(), "non-finite coordinate in appended points");
            self.data.push(x);
            acc += x * x;
            got += 1;
            if got.is_multiple_of(self.d) {
                self.sqnorms.push(acc);
                acc = T::ZERO;
            }
        }
        assert_eq!(got, want, "coordinate stream is not n_points * d long");
        self.n += n_points;
        start..self.n
    }

    /// Convert every coordinate to another scalar type, recomputing the
    /// `X2` table in the target precision (so f32 kernels prune against
    /// f32-accurate norms rather than rounded f64 ones).
    pub fn cast<U: GsknnScalar>(&self) -> PointSet<U> {
        let data: Vec<U> = self.data.iter().map(|&x| U::from_f64(x.to_f64())).collect();
        PointSet::from_vec(self.d, self.n, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sqnorms_match_manual() {
        let ps = PointSet::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 0.0, -2.0]);
        assert_eq!(ps.sqnorm(0), 5.0);
        assert_eq!(ps.sqnorm(1), 25.0);
        assert_eq!(ps.sqnorm(2), 4.0);
    }

    #[test]
    fn point_views_are_columns() {
        let ps = PointSet::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(ps.point(0), &[1.0, 2.0, 3.0]);
        assert_eq!(ps.point(1), &[4.0, 5.0, 6.0]);
        assert_eq!(ps.point_slab(1, 1, 2), &[5.0, 6.0]);
    }

    #[test]
    fn gather_collects_in_index_order() {
        let ps = PointSet::from_vec(2, 3, vec![0.0, 1.0, 10.0, 11.0, 20.0, 21.0]);
        assert_eq!(ps.gather(&[2, 0]), vec![20.0, 21.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        PointSet::from_vec(1, 2, vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "buffer is not d*n long")]
    fn rejects_bad_shape() {
        PointSet::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn empty_set_is_fine() {
        let ps = PointSet::<f64>::from_vec(4, 0, Vec::new());
        assert!(ps.is_empty());
        assert_eq!(ps.dim(), 4);
    }

    #[test]
    fn append_extends_ids_and_norms() {
        let mut ps = PointSet::from_vec(2, 1, vec![1.0, 2.0]);
        let range = ps.append(&[3.0, 4.0, 0.0, 1.0]);
        assert_eq!(range, 1..3);
        assert_eq!(ps.len(), 3);
        assert_eq!(ps.point(0), &[1.0, 2.0]); // existing ids stable
        assert_eq!(ps.point(1), &[3.0, 4.0]);
        assert_eq!(ps.sqnorm(1), 25.0);
        assert_eq!(ps.sqnorm(2), 1.0);
    }

    #[test]
    fn clear_then_append_from_f64_matches_from_vec() {
        let mut ps = PointSet::from_vec(2, 2, vec![9.0, 9.0, 9.0, 9.0]);
        ps.clear();
        assert!(ps.is_empty());
        assert_eq!(ps.dim(), 2);
        let coords = [1.0f64, 2.0, 3.0, 4.0];
        let range = ps.append_from_f64(2, coords.iter().copied());
        assert_eq!(range, 0..2);
        let fresh = PointSet::<f64>::from_vec(2, 2, coords.to_vec());
        assert_eq!(ps.as_slice(), fresh.as_slice());
        assert_eq!(ps.sqnorms(), fresh.sqnorms());
        // and the f32 narrowing path
        let mut ps32 = PointSet::<f32>::from_vec(2, 0, Vec::new());
        ps32.append_from_f64(2, coords.iter().copied());
        let fresh32: PointSet<f32> = fresh.cast();
        assert_eq!(ps32.as_slice(), fresh32.as_slice());
        assert_eq!(ps32.sqnorms(), fresh32.sqnorms());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn append_from_f64_rejects_f32_overflow() {
        let mut ps = PointSet::<f32>::from_vec(1, 0, Vec::new());
        ps.append_from_f64(1, std::iter::once(1e300));
    }

    #[test]
    #[should_panic(expected = "not n_points * d long")]
    fn append_from_f64_rejects_short_stream() {
        let mut ps = PointSet::<f64>::from_vec(2, 0, Vec::new());
        ps.append_from_f64(2, [1.0, 2.0, 3.0].into_iter());
    }

    #[test]
    fn f32_point_set_and_cast() {
        let ps64 = PointSet::from_vec(2, 2, vec![0.5, 1.5, 2.0, 3.0]);
        let ps32: PointSet<f32> = ps64.cast();
        assert_eq!(ps32.dim(), 2);
        assert_eq!(ps32.point(1), &[2.0f32, 3.0]);
        // sqnorms recomputed in f32 (exact here: small halves)
        assert_eq!(ps32.sqnorm(0), 2.5f32);
        // and a direct f32 construction matches the cast
        let direct = PointSet::<f32>::from_vec(2, 2, vec![0.5, 1.5, 2.0, 3.0]);
        assert_eq!(direct.as_slice(), ps32.as_slice());
        assert_eq!(direct.sqnorms(), ps32.sqnorms());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn f32_rejects_nan_too() {
        PointSet::<f32>::from_vec(1, 2, vec![1.0, f32::NAN]);
    }

    #[test]
    #[should_panic(expected = "whole number of points")]
    fn append_rejects_ragged() {
        let mut ps = PointSet::from_vec(2, 1, vec![1.0, 2.0]);
        ps.append(&[3.0]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn append_rejects_nan() {
        let mut ps = PointSet::from_vec(1, 1, vec![1.0]);
        ps.append(&[f64::NAN]);
    }
}
