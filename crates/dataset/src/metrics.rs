//! Scalar distance functions — the single source of truth every optimized
//! kernel in the workspace is tested against, covering the ℓp family the
//! paper's micro-kernel supports (§2.4 "General ℓp norm"). All functions
//! are generic over the coordinate scalar; `DistanceKind` itself stays a
//! plain enum (`Lp` carries its exponent as f64 and converts at the edge).

use gsknn_scalar::GsknnScalar;

/// Which distance the kernel computes. `SqL2` is the squared Euclidean
/// distance of the GEMM expansion (Eq. 1); the others are the direct-form
/// norms only the fused kernel can compute.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DistanceKind {
    /// Squared ℓ2: `Σ (a_i − b_i)²` (what GEMM-based kNN computes).
    SqL2,
    /// ℓ1 / Manhattan: `Σ |a_i − b_i|`.
    L1,
    /// ℓ∞ / Chebyshev: `max |a_i − b_i|`.
    LInf,
    /// General ℓp (p > 0): `Σ |a_i − b_i|^p` — returned **without** the
    /// final `1/p` root, matching the squared-ℓ2 convention (monotone in
    /// the true distance, so neighbor ordering is unchanged).
    Lp(f64),
    /// Cosine distance `1 − aᵀb / (‖a‖·‖b‖)` ∈ [0, 2] — the other metric
    /// the GEMM decomposition supports (it shares the inner-product /
    /// norms structure of Eq. 1). A zero-norm operand yields distance 1
    /// (the "uncorrelated" convention), never NaN.
    Cosine,
}

impl DistanceKind {
    /// Evaluate this distance between two equal-length coordinate slices.
    #[inline]
    pub fn eval<T: GsknnScalar>(&self, a: &[T], b: &[T]) -> T {
        match *self {
            DistanceKind::SqL2 => dist_sq_l2(a, b),
            DistanceKind::L1 => dist_l1(a, b),
            DistanceKind::LInf => dist_linf(a, b),
            DistanceKind::Lp(p) => dist_lp(a, b, T::from_f64(p)),
            DistanceKind::Cosine => dist_cosine(a, b),
        }
    }

    /// Short label for reports.
    pub fn name(&self) -> String {
        match *self {
            DistanceKind::SqL2 => "sq-l2".to_string(),
            DistanceKind::L1 => "l1".to_string(),
            DistanceKind::LInf => "linf".to_string(),
            DistanceKind::Lp(p) => format!("l{p}"),
            DistanceKind::Cosine => "cosine".to_string(),
        }
    }
}

/// Squared Euclidean distance `‖a − b‖²`, direct form.
#[inline]
pub fn dist_sq_l2<T: GsknnScalar>(a: &[T], b: &[T]) -> T {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).fold(T::ZERO, |acc, (&x, &y)| {
        let t = x - y;
        acc + t * t
    })
}

/// Manhattan distance `Σ|a_i − b_i|`.
#[inline]
pub fn dist_l1<T: GsknnScalar>(a: &[T], b: &[T]) -> T {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .fold(T::ZERO, |acc, (&x, &y)| acc + (x - y).abs())
}

/// Chebyshev distance `max|a_i − b_i|`.
#[inline]
pub fn dist_linf<T: GsknnScalar>(a: &[T], b: &[T]) -> T {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .fold(T::ZERO, |acc, (&x, &y)| acc.max((x - y).abs()))
}

/// Cosine distance `1 − cos(a, b)`; 1 when either operand has zero norm.
#[inline]
pub fn dist_cosine<T: GsknnScalar>(a: &[T], b: &[T]) -> T {
    debug_assert_eq!(a.len(), b.len());
    let mut dot = T::ZERO;
    let mut na = T::ZERO;
    let mut nb = T::ZERO;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    let denom = (na * nb).sqrt();
    if denom > T::ZERO {
        T::ONE - dot / denom
    } else {
        T::ONE
    }
}

/// `Σ|a_i − b_i|^p` (no final root; see [`DistanceKind::Lp`]).
#[inline]
pub fn dist_lp<T: GsknnScalar>(a: &[T], b: &[T], p: T) -> T {
    debug_assert_eq!(a.len(), b.len());
    assert!(p > T::ZERO, "lp norm requires p > 0");
    a.iter()
        .zip(b)
        .fold(T::ZERO, |acc, (&x, &y)| acc + (x - y).abs().powf(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 3] = [1.0, 2.0, 3.0];
    const B: [f64; 3] = [4.0, 0.0, 3.0];

    #[test]
    fn sq_l2() {
        assert_eq!(dist_sq_l2(&A, &B), 9.0 + 4.0);
    }

    #[test]
    fn l1() {
        assert_eq!(dist_l1(&A, &B), 5.0);
    }

    #[test]
    fn linf() {
        assert_eq!(dist_linf(&A, &B), 3.0);
    }

    #[test]
    fn lp_2_matches_sq_l2() {
        assert!((dist_lp(&A, &B, 2.0) - dist_sq_l2(&A, &B)).abs() < 1e-12);
    }

    #[test]
    fn lp_1_matches_l1() {
        assert!((dist_lp(&A, &B, 1.0) - dist_l1(&A, &B)).abs() < 1e-12);
    }

    #[test]
    fn zero_distance_to_self() {
        for kind in [
            DistanceKind::SqL2,
            DistanceKind::L1,
            DistanceKind::LInf,
            DistanceKind::Lp(3.0),
        ] {
            assert_eq!(kind.eval(&A, &A), 0.0, "{}", kind.name());
        }
        assert!(DistanceKind::Cosine.eval(&A, &A).abs() < 1e-12);
    }

    #[test]
    fn cosine_basics() {
        // orthogonal -> 1, parallel -> 0, antiparallel -> 2
        assert!((dist_cosine(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!(dist_cosine(&[2.0, 0.0], &[5.0, 0.0]).abs() < 1e-12);
        assert!((dist_cosine(&[1.0, 0.0], &[-3.0, 0.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_norm_is_one_not_nan() {
        let z = [0.0, 0.0];
        assert_eq!(dist_cosine(&z, &[1.0, 2.0]), 1.0);
        assert_eq!(dist_cosine(&z, &z), 1.0);
    }

    #[test]
    fn dispatch_table_names() {
        assert_eq!(DistanceKind::Cosine.name(), "cosine");
        assert_eq!(DistanceKind::Lp(1.5).name(), "l1.5");
    }

    #[test]
    #[should_panic(expected = "p > 0")]
    fn lp_rejects_nonpositive_p() {
        dist_lp(&A, &B, 0.0);
    }

    #[test]
    fn f32_distances_match_f64_on_exact_inputs() {
        // small integers are exact in both precisions, so every metric
        // must agree bit-for-bit after widening
        let a32: Vec<f32> = A.iter().map(|&v| v as f32).collect();
        let b32: Vec<f32> = B.iter().map(|&v| v as f32).collect();
        for kind in [
            DistanceKind::SqL2,
            DistanceKind::L1,
            DistanceKind::LInf,
            DistanceKind::Lp(2.0),
            DistanceKind::Cosine,
        ] {
            let d64 = kind.eval(&A[..], &B[..]);
            let d32 = kind.eval(&a32[..], &b32[..]);
            assert!(
                (d64 - d32 as f64).abs() < 1e-6,
                "{}: {d64} vs {d32}",
                kind.name()
            );
        }
    }
}
