//! Ground truth: exact kNN by full distance evaluation + sort. O(mn·d +
//! mn·log n) — never used for performance, always used for correctness.

use dataset::{DistanceKind, PointSet};
use gsknn_scalar::GsknnScalar;
use knn_select::{Neighbor, NeighborTable};

/// Exact k nearest references for every query, by direct per-pair distance
/// evaluation (no GEMM expansion — this is the numerically "direct" form)
/// and a full sort under the workspace-wide `(dist, idx)` order. Generic
/// over the element type so the f32 kernels have a same-precision oracle.
pub fn exact<T: GsknnScalar>(
    x: &PointSet<T>,
    q_idx: &[usize],
    r_idx: &[usize],
    k: usize,
    kind: DistanceKind,
) -> NeighborTable<T> {
    let mut table = NeighborTable::new(q_idx.len(), k);
    let mut cands: Vec<Neighbor<T>> = Vec::with_capacity(r_idx.len());
    for (i, &qi) in q_idx.iter().enumerate() {
        cands.clear();
        cands.extend(
            r_idx
                .iter()
                .map(|&rj| Neighbor::new(kind.eval(x.point(qi), x.point(rj)), rj as u32)),
        );
        cands.sort_unstable_by(Neighbor::cmp_dist_idx);
        cands.truncate(k);
        table.set_row(i, &cands);
    }
    table
}

/// Assert that `got` matches the oracle row by row, with a relative
/// distance tolerance (the GEMM expansion rounds differently from the
/// direct form) and id agreement wherever distances are separated by more
/// than the tolerance. Panics with context on mismatch.
pub fn assert_matches<T: GsknnScalar>(
    got: &NeighborTable<T>,
    want: &NeighborTable<T>,
    tol: f64,
    ctx: &str,
) {
    assert_eq!(got.len(), want.len(), "{ctx}: row count");
    assert_eq!(got.k(), want.k(), "{ctx}: k");
    for i in 0..want.len() {
        let (g, w) = (got.row(i), want.row(i));
        for (pos, (a, b)) in g.iter().zip(w).enumerate() {
            let (ad, bd) = (a.dist.to_f64(), b.dist.to_f64());
            let close = (ad - bd).abs() <= tol * (1.0 + bd.abs());
            assert!(
                close,
                "{ctx}: row {i} pos {pos}: dist {} vs {} (idx {} vs {})",
                a.dist, b.dist, a.idx, b.idx
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::uniform;

    #[test]
    fn oracle_is_sorted_and_self_first() {
        let x = uniform(30, 6, 3);
        let q: Vec<usize> = (0..5).collect();
        let r: Vec<usize> = (0..30).collect();
        let t = exact(&x, &q, &r, 4, DistanceKind::SqL2);
        for i in 0..5 {
            assert_eq!(t.row(i)[0].idx, i as u32);
            assert!(t.row(i).windows(2).all(|w| !w[1].beats(&w[0])));
        }
    }

    #[test]
    fn oracle_k_bigger_than_n_pads() {
        let x = uniform(3, 2, 1);
        let t = exact(&x, &[0], &[1, 2], 5, DistanceKind::L1);
        assert_eq!(t.row(0)[2], Neighbor::sentinel());
    }
}
