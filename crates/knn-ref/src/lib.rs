//! Reference implementations the paper compares GSKNN against:
//!
//! * [`GemmKnn`] — Algorithm 2.1, the state-of-the-art decomposition the
//!   paper calls "MKL + STL": gather `Q`/`R` from `X`, one big
//!   `C = −2·QᵀR` GEMM, the `‖q‖² + ‖r‖²` rank-1 correction, then
//!   per-query heap selection. Each phase is timed separately, which is
//!   what regenerates the Table 5 breakdown.
//! * [`single_loop_knn`] — the per-query scan used by FLANN/ANN/MLPACK
//!   ("compute the pairwise distances per query point using a single loop
//!   over all reference points"), the related-work baseline.
//! * [`oracle`] — an O(mn log n) exact solver (full sort), the ground
//!   truth every kernel in the workspace is tested against.

mod gemm_knn;
pub mod oracle;
mod single_loop;

pub use gemm_kernel::GemmScalar;
pub use gemm_knn::{GemmKnn, PhaseTimes};
pub use single_loop::single_loop_knn;
