//! The FLANN/ANN/MLPACK-style baseline: "compute the pairwise distances
//! per query point using a single loop over all reference points" (paper,
//! Related work). No blocking, no packing, no vectorized kernel — every
//! reference point is streamed once per query, so it re-reads `X` `m`
//! times and is the slowest of the three kernel designs on anything
//! non-trivial. Supports every [`DistanceKind`].

use dataset::{DistanceKind, PointSet};
use knn_select::{BinaryMaxHeap, Neighbor, NeighborTable};
use rayon::prelude::*;

/// k nearest references per query by a per-query scan over all
/// references; `parallel` spreads queries across the rayon pool.
pub fn single_loop_knn(
    x: &PointSet,
    q_idx: &[usize],
    r_idx: &[usize],
    k: usize,
    kind: DistanceKind,
    parallel: bool,
) -> NeighborTable {
    let mut table = NeighborTable::new(q_idx.len(), k);
    let scan = |&qi: &usize| -> Vec<Neighbor> {
        let qp = x.point(qi);
        let mut heap = BinaryMaxHeap::new(k);
        for &rj in r_idx {
            let dist = kind.eval(qp, x.point(rj));
            if dist <= heap.threshold() {
                heap.push(Neighbor::new(dist, rj as u32));
            }
        }
        heap.into_sorted_vec()
    };
    let rows: Vec<Vec<Neighbor>> = if parallel {
        q_idx.par_iter().map(scan).collect()
    } else {
        q_idx.iter().map(scan).collect()
    };
    for (i, row) in rows.into_iter().enumerate() {
        table.set_row(i, &row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use dataset::uniform;

    #[test]
    fn matches_oracle_all_norms() {
        let x = uniform(60, 8, 13);
        let q: Vec<usize> = (0..15).collect();
        let r: Vec<usize> = (0..60).collect();
        for kind in [
            DistanceKind::SqL2,
            DistanceKind::L1,
            DistanceKind::LInf,
            DistanceKind::Lp(3.0),
        ] {
            let got = single_loop_knn(&x, &q, &r, 5, kind, false);
            let want = oracle::exact(&x, &q, &r, 5, kind);
            oracle::assert_matches(&got, &want, 1e-12, &kind.name());
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let x = uniform(40, 5, 3);
        let q: Vec<usize> = (0..40).collect();
        let r: Vec<usize> = (0..40).collect();
        let a = single_loop_knn(&x, &q, &r, 3, DistanceKind::SqL2, false);
        let b = single_loop_knn(&x, &q, &r, 3, DistanceKind::SqL2, true);
        for i in 0..40 {
            assert_eq!(a.row(i), b.row(i));
        }
    }
}
