//! Algorithm 2.1 — the GEMM approach to k-nearest neighbors, phase by
//! phase, each phase timed:
//!
//! 1. **collect** (`Tcoll`): gather the dense `Q = X(:, q)`, `R = X(:, r)`
//!    matrices and the `Q2`/`R2` norm vectors — the memory traffic GSKNN
//!    eliminates by packing straight from `X`;
//! 2. **gemm** (`Tgemm`): `C = −2·QᵀR` through the blocked
//!    [`gemm_kernel`] substrate (the stand-in for MKL's `dgemm`);
//! 3. **sq2d** (`Tsq2d`): `C(i,j) += Q2(i) + R2(j)`, clamped at 0;
//! 4. **heap** (`Theap`): per-query max-heap selection over row `C(i,:)`
//!    (the stand-in for an STL `priority_queue`).
//!
//! Only the Euclidean expansion works here — this decomposition is
//! *defined* by Eq. (1), which is exactly the paper's point about GEMM
//! being limited to ℓ2/cosine while GSKNN supports any ℓp.

use dataset::PointSet;
use gemm_kernel::{gemm_tn, GemmParams, GemmScalar, GemmWorkspace};
use gsknn_scalar::GsknnScalar;
use knn_select::{BinaryMaxHeap, Neighbor, NeighborTable};
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Wall-clock time of each Algorithm 2.1 phase (the Table 5 columns).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Gathering `Q`, `R`, `Q2`, `R2` from `X`.
    pub t_coll: Duration,
    /// The `C = −2·QᵀR` GEMM.
    pub t_gemm: Duration,
    /// The squared-norm rank-1 correction.
    pub t_sq2d: Duration,
    /// Heap selection over the stored `C`.
    pub t_heap: Duration,
}

impl PhaseTimes {
    /// Sum of all phases.
    pub fn total(&self) -> Duration {
        self.t_coll + self.t_gemm + self.t_sq2d + self.t_heap
    }

    /// Accumulate another measurement.
    pub fn add(&mut self, other: &PhaseTimes) {
        self.t_coll += other.t_coll;
        self.t_gemm += other.t_gemm;
        self.t_sq2d += other.t_sq2d;
        self.t_heap += other.t_heap;
    }
}

/// Which metric the decomposition computes. The GEMM approach is
/// restricted to the two metrics expressible through the inner-product
/// expansion — the paper's point about GSKNN's ℓp generality.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GemmMetric {
    /// Squared Euclidean (Eq. 1).
    #[default]
    SqL2,
    /// Cosine distance `1 − qᵀr / (‖q‖‖r‖)`.
    Cosine,
}

/// Reusable GEMM-approach executor (owns `Q`, `R`, `C` staging buffers —
/// the very buffers whose traffic Eq. (5) charges this method for),
/// generic over the element precision like the fused kernel it baselines.
#[derive(Default)]
pub struct GemmKnn<T: GemmScalar = f64> {
    params: GemmParams,
    parallel: bool,
    metric: GemmMetric,
    ws: GemmWorkspace<T>,
    q: Vec<T>,
    r: Vec<T>,
    q2: Vec<T>,
    r2: Vec<T>,
    c: Vec<T>,
}

impl<T: GemmScalar> GemmKnn<T> {
    /// Executor with the given blocking parameters; `parallel` turns on
    /// rayon parallelism for the correction + selection phases (the GEMM
    /// substrate itself is serial).
    pub fn new(params: GemmParams, parallel: bool) -> Self {
        GemmKnn {
            params,
            parallel,
            ..Default::default()
        }
    }

    /// As [`GemmKnn::new`], computing cosine distance instead of ℓ2².
    pub fn with_metric(params: GemmParams, parallel: bool, metric: GemmMetric) -> Self {
        GemmKnn {
            params,
            parallel,
            metric,
            ..Default::default()
        }
    }

    /// Solve one kernel: squared-ℓ2 k nearest references for each query.
    pub fn run(
        &mut self,
        x: &PointSet<T>,
        q_idx: &[usize],
        r_idx: &[usize],
        k: usize,
    ) -> (NeighborTable<T>, PhaseTimes) {
        let mut table = NeighborTable::new(q_idx.len(), k);
        let times = self.update(x, q_idx, r_idx, &mut table);
        (table, times)
    }

    /// Update existing neighbor lists (row `i` ↔ `q_idx[i]`).
    pub fn update(
        &mut self,
        x: &PointSet<T>,
        q_idx: &[usize],
        r_idx: &[usize],
        table: &mut NeighborTable<T>,
    ) -> PhaseTimes {
        let (m, n, d) = (q_idx.len(), r_idx.len(), x.dim());
        assert_eq!(table.len(), m, "one table row per query");
        let mut times = PhaseTimes::default();
        if m == 0 {
            return times;
        }
        if n == 0 {
            return times;
        }

        // Phase 1: collect
        let t0 = Instant::now();
        gather_into(x, q_idx, &mut self.q);
        gather_into(x, r_idx, &mut self.r);
        self.q2.clear();
        self.q2.extend(q_idx.iter().map(|&i| x.sqnorm(i)));
        self.r2.clear();
        self.r2.extend(r_idx.iter().map(|&j| x.sqnorm(j)));
        times.t_coll = t0.elapsed();

        // Phase 2: C = alpha·QᵀR (row-major m×n, the paper's Cᵀ trick);
        // alpha = −2 for the ℓ2² expansion, +1 for the cosine dot product
        let t1 = Instant::now();
        let alpha = match self.metric {
            GemmMetric::SqL2 => T::from_f64(-2.0),
            GemmMetric::Cosine => T::ONE,
        };
        self.c.resize(m * n, T::ZERO);
        if d == 0 {
            self.c.fill(T::ZERO);
        } else if self.parallel {
            gemm_kernel::gemm_tn_parallel(
                alpha,
                &self.q,
                &self.r,
                T::ZERO,
                &mut self.c,
                d,
                m,
                n,
                &self.params,
            );
        } else {
            gemm_tn(
                alpha,
                &self.q,
                &self.r,
                T::ZERO,
                &mut self.c,
                d,
                m,
                n,
                &self.params,
                &mut self.ws,
            );
        }
        times.t_gemm = t1.elapsed();

        // Phase 3: the norm correction — rank-1 add for ℓ2², row/column
        // normalization for cosine
        let t2 = Instant::now();
        let (q2, r2) = (&self.q2, &self.r2);
        let metric = self.metric;
        let correct = |(row, q2i): (&mut [T], &T)| match metric {
            GemmMetric::SqL2 => {
                for (cij, r2j) in row.iter_mut().zip(r2) {
                    *cij = (*cij + *q2i + *r2j).max(T::ZERO);
                }
            }
            GemmMetric::Cosine => {
                for (cij, r2j) in row.iter_mut().zip(r2) {
                    let denom = (*q2i * *r2j).sqrt();
                    *cij = if denom > T::ZERO {
                        T::ONE - *cij / denom
                    } else {
                        T::ONE
                    };
                }
            }
        };
        if self.parallel {
            self.c
                .par_chunks_mut(n)
                .zip(q2.par_iter())
                .for_each(correct);
        } else {
            self.c.chunks_mut(n).zip(q2.iter()).for_each(correct);
        }
        times.t_sq2d = t2.elapsed();

        // Phase 4: per-query heap selection (embarrassingly parallel)
        let t3 = Instant::now();
        let k = table.k();
        let c = &self.c;
        let select = |i: usize, row_in: &[Neighbor<T>]| -> Vec<Neighbor<T>> {
            let mut heap = BinaryMaxHeap::from_row(k, row_in);
            // id-unique insertion once seeded from a non-empty list: the
            // iterated solvers re-visit stored neighbors (see
            // BinaryMaxHeap::push_unique)
            let seeded = !heap.is_empty();
            let crow = &c[i * n..(i + 1) * n];
            for (j, &dist) in crow.iter().enumerate() {
                if dist <= heap.threshold() {
                    let cand = Neighbor::new(dist, r_idx[j] as u32);
                    if seeded {
                        heap.push_unique(cand);
                    } else {
                        heap.push(cand);
                    }
                }
            }
            heap.into_sorted_vec()
        };
        if self.parallel {
            let rows: Vec<Vec<Neighbor<T>>> = (0..m)
                .into_par_iter()
                .map(|i| select(i, table.row(i)))
                .collect();
            for (i, row) in rows.into_iter().enumerate() {
                table.set_row(i, &row);
            }
        } else {
            for i in 0..m {
                let row = select(i, table.row(i));
                table.set_row(i, &row);
            }
        }
        times.t_heap = t3.elapsed();
        times
    }
}

/// `X(:, idx)` into a reusable dense column-major buffer.
fn gather_into<T: GsknnScalar>(x: &PointSet<T>, idx: &[usize], out: &mut Vec<T>) {
    out.clear();
    out.reserve(idx.len() * x.dim());
    for &j in idx {
        out.extend_from_slice(x.point(j));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use dataset::{uniform, DistanceKind};

    #[test]
    fn matches_oracle() {
        let x = uniform(90, 11, 7);
        let q: Vec<usize> = (0..25).collect();
        let r: Vec<usize> = (5..90).collect();
        let mut exec = GemmKnn::new(GemmParams::tiny(), false);
        let (got, times) = exec.run(&x, &q, &r, 6);
        let want = oracle::exact(&x, &q, &r, 6, DistanceKind::SqL2);
        oracle::assert_matches(&got, &want, 1e-9, "gemm-knn");
        assert!(times.total() > Duration::ZERO);
    }

    #[test]
    fn cosine_metric_matches_oracle() {
        let x = uniform(80, 9, 15);
        let q: Vec<usize> = (0..20).collect();
        let r: Vec<usize> = (0..80).collect();
        let mut exec = GemmKnn::with_metric(GemmParams::tiny(), false, GemmMetric::Cosine);
        let (got, _) = exec.run(&x, &q, &r, 5);
        let want = oracle::exact(&x, &q, &r, 5, DistanceKind::Cosine);
        oracle::assert_matches(&got, &want, 1e-9, "gemm-knn cosine");
    }

    #[test]
    fn parallel_matches_serial() {
        let x = uniform(70, 9, 21);
        let q: Vec<usize> = (0..30).collect();
        let r: Vec<usize> = (0..70).collect();
        let (a, _) = GemmKnn::new(GemmParams::tiny(), false).run(&x, &q, &r, 5);
        let (b, _) = GemmKnn::new(GemmParams::tiny(), true).run(&x, &q, &r, 5);
        for i in 0..30 {
            assert_eq!(a.row(i), b.row(i), "row {i}");
        }
    }

    #[test]
    fn update_accumulates_like_oracle_on_union() {
        let x = uniform(100, 7, 33);
        let q: Vec<usize> = (0..10).collect();
        let all: Vec<usize> = (0..100).collect();
        let mut exec = GemmKnn::new(GemmParams::tiny(), false);
        let (mut t, _) = exec.run(&x, &q, &all[..50], 4);
        exec.update(&x, &q, &all[50..], &mut t);
        let want = oracle::exact(&x, &q, &all, 4, DistanceKind::SqL2);
        oracle::assert_matches(&t, &want, 1e-9, "gemm-knn update");
    }

    #[test]
    fn executor_reuse_across_shapes() {
        let x = uniform(50, 5, 2);
        let mut exec = GemmKnn::new(GemmParams::tiny(), false);
        for (m, n) in [(10, 50), (3, 7), (25, 25)] {
            let q: Vec<usize> = (0..m).collect();
            let r: Vec<usize> = (0..n).collect();
            let (got, _) = exec.run(&x, &q, &r, 3);
            let want = oracle::exact(&x, &q, &r, 3, DistanceKind::SqL2);
            oracle::assert_matches(&got, &want, 1e-9, "reuse");
        }
    }

    #[test]
    fn f32_matches_f32_oracle() {
        let x: PointSet<f32> = uniform(90, 11, 7).cast();
        let q: Vec<usize> = (0..25).collect();
        let r: Vec<usize> = (5..90).collect();
        let mut exec: GemmKnn<f32> = GemmKnn::new(GemmParams::tiny_for::<f32>(), false);
        let (got, _) = exec.run(&x, &q, &r, 6);
        let want = oracle::exact(&x, &q, &r, 6, DistanceKind::SqL2);
        oracle::assert_matches(&got, &want, 1e-4, "gemm-knn f32");
    }

    #[test]
    fn f32_cosine_matches_f32_oracle() {
        let x: PointSet<f32> = uniform(80, 9, 15).cast();
        let q: Vec<usize> = (0..20).collect();
        let r: Vec<usize> = (0..80).collect();
        let mut exec: GemmKnn<f32> =
            GemmKnn::with_metric(GemmParams::tiny_for::<f32>(), false, GemmMetric::Cosine);
        let (got, _) = exec.run(&x, &q, &r, 5);
        let want = oracle::exact(&x, &q, &r, 5, DistanceKind::Cosine);
        oracle::assert_matches(&got, &want, 1e-4, "gemm-knn f32 cosine");
    }

    #[test]
    fn empty_inputs_are_noops() {
        let x = uniform(10, 3, 1);
        let mut exec = GemmKnn::new(GemmParams::tiny(), false);
        let (t, _) = exec.run(&x, &[], &[0, 1], 2);
        assert_eq!(t.len(), 0);
        let (t2, _) = exec.run(&x, &[0], &[], 2);
        assert_eq!(t2.row(0)[0], Neighbor::sentinel());
    }
}
