//! Clustering on the kNN kernel.
//!
//! The paper's conclusion lists "integration with other higher-level
//! algorithms for clustering and learning" as ongoing work; this crate is
//! that integration for Lloyd's k-means: the assignment step — find each
//! point's nearest centroid — is exactly a cross-table kNN kernel call
//! with `k = 1` (queries = the points, references = the centroids), so
//! the fused kernel's throughput carries straight through to clustering.

mod kmeans;

pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
