//! Lloyd's k-means with k-means++ initialization; the assignment step
//! runs through the GSKNN cross-table kernel.

use dataset::{dist_sq_l2, DistanceKind, PointSet};
use gsknn_core::{Gsknn, GsknnConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// k-means configuration.
#[derive(Clone, Debug)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub clusters: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Stop when the relative inertia improvement falls below this.
    pub tol: f64,
    /// RNG seed (initialization).
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            clusters: 8,
            max_iters: 50,
            tol: 1e-6,
            seed: 0xC1,
        }
    }
}

/// k-means output.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Final centroids (`clusters` points).
    pub centroids: PointSet,
    /// Cluster id per input point.
    pub assignment: Vec<u32>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
    /// Inertia after each iteration (non-increasing).
    pub history: Vec<f64>,
}

/// Run Lloyd's algorithm on `x`.
///
/// ```
/// use cluster::{kmeans, KMeansConfig};
/// let x = dataset::gaussian_embedded(300, 16, 3, 42);
/// let res = kmeans(&x, &KMeansConfig { clusters: 3, ..Default::default() });
/// assert_eq!(res.assignment.len(), 300);
/// assert!(res.history.windows(2).all(|w| w[1] <= w[0] + 1e-9)); // inertia monotone
/// ```
///
/// # Panics
/// If `clusters` is 0 or exceeds the number of points.
pub fn kmeans(x: &PointSet, cfg: &KMeansConfig) -> KMeansResult {
    let n = x.len();
    let d = x.dim();
    let kc = cfg.clusters;
    assert!(kc >= 1, "need at least one cluster");
    assert!(kc <= n, "more clusters than points");

    let mut centroids = kmeanspp_init(x, kc, cfg.seed);
    let all: Vec<usize> = (0..n).collect();
    let cent_ids: Vec<usize> = (0..kc).collect();
    let mut exec = Gsknn::new(GsknnConfig::default());
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5EED);

    let mut assignment = vec![0u32; n];
    let mut inertia = f64::INFINITY;
    let mut history = Vec::new();
    let mut iterations = 0;

    for _ in 0..cfg.max_iters {
        iterations += 1;
        // assignment: 1-NN of every point against the centroid table
        let cents = PointSet::from_vec(d, kc, centroids.clone());
        let table = exec.run_cross(x, &all, &cents, &cent_ids, 1, DistanceKind::SqL2);
        let mut new_inertia = 0.0;
        for (i, slot) in assignment.iter_mut().enumerate() {
            let nb = table.row(i)[0];
            *slot = nb.idx;
            new_inertia += nb.dist;
        }
        history.push(new_inertia);

        // update: centroid = mean of its members; empty clusters reseed
        // to the point farthest from its centroid
        let mut sums = vec![0.0f64; kc * d];
        let mut counts = vec![0usize; kc];
        for (i, &a) in assignment.iter().enumerate() {
            let c = a as usize;
            counts[c] += 1;
            for (s, v) in sums[c * d..(c + 1) * d].iter_mut().zip(x.point(i)) {
                *s += v;
            }
        }
        for c in 0..kc {
            if counts[c] == 0 {
                let far = (0..n)
                    .max_by(|&a, &b| {
                        table.row(a)[0]
                            .dist
                            .partial_cmp(&table.row(b)[0].dist)
                            .unwrap()
                    })
                    .unwrap_or_else(|| rng.gen_range(0..n));
                centroids[c * d..(c + 1) * d].copy_from_slice(x.point(far));
            } else {
                for (slot, s) in centroids[c * d..(c + 1) * d].iter_mut().zip(&sums[c * d..]) {
                    *slot = s / counts[c] as f64;
                }
            }
        }

        let improved = inertia.is_infinite() || inertia - new_inertia > cfg.tol * inertia;
        inertia = new_inertia;
        if !improved {
            break;
        }
    }

    KMeansResult {
        centroids: PointSet::from_vec(d, kc, centroids),
        assignment,
        inertia,
        iterations,
        history,
    }
}

/// k-means++ seeding: first centroid uniform, each next with probability
/// proportional to the squared distance to the nearest chosen centroid.
fn kmeanspp_init(x: &PointSet, kc: usize, seed: u64) -> Vec<f64> {
    let n = x.len();
    let d = x.dim();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut centroids = Vec::with_capacity(kc * d);
    let first = rng.gen_range(0..n);
    centroids.extend_from_slice(x.point(first));

    let mut best_d2: Vec<f64> = (0..n)
        .map(|i| dist_sq_l2(x.point(i), x.point(first)))
        .collect();
    for _ in 1..kc {
        let total: f64 = best_d2.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..n) // all points identical to some centroid
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = n - 1;
            for (i, &w) in best_d2.iter().enumerate() {
                if target < w {
                    pick = i;
                    break;
                }
                target -= w;
            }
            pick
        };
        centroids.extend_from_slice(x.point(next));
        for (i, w) in best_d2.iter_mut().enumerate() {
            *w = w.min(dist_sq_l2(x.point(i), x.point(next)));
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::uniform;

    /// Three well-separated blobs in 2-d.
    fn blobs() -> (PointSet, Vec<u32>) {
        let centers = [[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]];
        let mut data = Vec::new();
        let mut truth = Vec::new();
        let mut state = 7u64;
        let mut jitter = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.8
        };
        for (c, center) in centers.iter().enumerate() {
            for _ in 0..40 {
                data.push(center[0] + jitter());
                data.push(center[1] + jitter());
                truth.push(c as u32);
            }
        }
        (PointSet::from_vec(2, 120, data), truth)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (x, truth) = blobs();
        let res = kmeans(
            &x,
            &KMeansConfig {
                clusters: 3,
                ..Default::default()
            },
        );
        // same-blob points share a cluster, cross-blob points differ
        for i in 0..120 {
            for j in 0..120 {
                let same_truth = truth[i] == truth[j];
                let same_pred = res.assignment[i] == res.assignment[j];
                assert_eq!(same_truth, same_pred, "points {i},{j}");
            }
        }
        assert!(res.inertia < 120.0 * 0.5, "inertia {}", res.inertia);
    }

    #[test]
    fn inertia_is_monotone_nonincreasing() {
        let x = uniform(300, 6, 11);
        let res = kmeans(
            &x,
            &KMeansConfig {
                clusters: 10,
                max_iters: 20,
                tol: 0.0,
                seed: 3,
            },
        );
        for w in res.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "inertia increased: {:?}", res.history);
        }
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let x = uniform(12, 3, 5);
        let res = kmeans(
            &x,
            &KMeansConfig {
                clusters: 12,
                max_iters: 30,
                tol: 0.0,
                seed: 1,
            },
        );
        assert!(res.inertia < 1e-9, "inertia {}", res.inertia);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let x = uniform(50, 4, 9);
        let res = kmeans(
            &x,
            &KMeansConfig {
                clusters: 1,
                max_iters: 5,
                tol: 0.0,
                seed: 2,
            },
        );
        for p in 0..4 {
            let mean: f64 = (0..50).map(|i| x.point(i)[p]).sum::<f64>() / 50.0;
            assert!((res.centroids.point(0)[p] - mean).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "more clusters than points")]
    fn too_many_clusters_panics() {
        let x = uniform(3, 2, 1);
        kmeans(
            &x,
            &KMeansConfig {
                clusters: 5,
                ..Default::default()
            },
        );
    }
}
