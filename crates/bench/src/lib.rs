//! Shared harness utilities for the table/figure binaries: repeatable
//! timing, GFLOPS accounting (the paper's `(2d+3)mn / T` definition),
//! command-line scaling flags, and aligned table printing.

use std::time::{Duration, Instant};

/// Command-line options shared by every harness binary.
///
/// * `--full` — run at the paper's problem sizes (minutes to hours);
///   default is a scaled configuration that finishes in ~a minute.
/// * `--json` — also emit machine-readable rows to stdout (one JSON
///   object per line, prefixed `#json `), for plotting.
/// * `--reps N` — timing repetitions (default 3, best-of).
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// Paper-scale sizes instead of the scaled defaults.
    pub full: bool,
    /// Emit `#json` rows.
    pub json: bool,
    /// Timing repetitions (best-of).
    pub reps: usize,
}

impl HarnessArgs {
    /// Parse from `std::env::args`; unknown flags abort with usage.
    pub fn parse() -> Self {
        let mut out = HarnessArgs {
            full: false,
            json: false,
            reps: 3,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--full" => out.full = true,
                "--json" => out.json = true,
                "--reps" => {
                    out.reps = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage());
                }
                "--help" | "-h" => usage(),
                other => {
                    eprintln!("unknown flag: {other}");
                    usage();
                }
            }
        }
        out
    }
}

fn usage() -> ! {
    eprintln!("usage: <bin> [--full] [--json] [--reps N]");
    std::process::exit(2);
}

/// Best-of-`reps` wall time of `f` (after one untimed warm-up call).
pub fn best_of<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    f(); // warm-up: page in buffers, JIT the branch predictors
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed());
    }
    best
}

/// The paper's efficiency metric: `(2d+3)·m·n` useful flops over the
/// measured time, in GFLOPS.
pub fn gflops(m: usize, n: usize, d: usize, t: Duration) -> f64 {
    (2 * d + 3) as f64 * m as f64 * n as f64 / t.as_secs_f64() / 1e9
}

/// Millisecond count with one decimal, for table cells.
pub fn ms(t: Duration) -> f64 {
    t.as_secs_f64() * 1e3
}

/// Print an aligned text table: `headers` then `rows` of equal arity.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<&str>| {
        let mut s = String::new();
        for (w, c) in widths.iter().zip(cells) {
            s.push_str(&format!("{c:>w$}  ", w = w));
        }
        println!("{}", s.trim_end());
    };
    line(headers.to_vec());
    line(widths.iter().map(|_| "-").collect()); // visual separator row
    for row in rows {
        line(row.iter().map(|s| s.as_str()).collect());
    }
}

/// Emit a machine-readable JSON row (prefixed so text parsers skip it).
pub fn json_row(args: &HarnessArgs, value: &serde_json::Value) {
    if args.json {
        println!("#json {value}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gflops_definition() {
        // 2d+3 = 5 flops per pair, 10x10 pairs, 1 second → 500 flops/s
        let g = gflops(10, 10, 1, Duration::from_secs(1));
        assert!((g - 500.0 / 1e9).abs() < 1e-18);
    }

    #[test]
    fn best_of_returns_a_small_time() {
        let t = best_of(2, || {
            std::hint::black_box(1 + 1);
        });
        assert!(t < Duration::from_millis(100));
    }

    #[test]
    fn print_table_handles_alignment() {
        print_table(
            "demo",
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
