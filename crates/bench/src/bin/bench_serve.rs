//! Persisted serving-latency trajectory: drive a fixed workload of
//! single-point queries through an in-process `gsknn-serve` server in
//! both precisions, and append client-measured p50/p99 round-trip
//! latency plus throughput to a repo-root `BENCH_serve.json` so
//! successive PRs can compare the serving stack against history.
//!
//! The workload is deliberately coalescer-bound: several concurrent
//! clients issue `m = 1` queries, so the measured latency is dominated
//! by the model-driven batch coalescing the crate exists to provide —
//! a regression in the flush policy or the lane plumbing shows up here
//! before it shows up in a kernel benchmark.
//!
//! Flags:
//! * `--smoke` — tiny workload (CI: proves the harness runs, not perf)
//! * `--out F` — output path (default `<repo root>/BENCH_serve.json`)
//! * `--warmup N` — unrecorded queries per client before measuring, so
//!   trajectory points exclude cold-start effects (default 0, keeping
//!   historical comparability)
//! * `--duration-ms D` — run each client for a wall-clock duration
//!   instead of a fixed query count (default 0 = count-based)
//! * `--clients LIST` — saturation sweep: after the fixed headline
//!   workload, re-run both lanes at each comma-separated client count
//!   (e.g. `8,64,256,1024`) and record the points under the run's
//!   `sweep` key. The headline `lanes`/`server` sections keep their
//!   shape, so `bench-diff` gating is unaffected; the sweep is the
//!   saturation curve EXPERIMENTS.md walks through.
//! * `--router` — after the headline workload, re-run both lanes
//!   through an in-process scatter-gather tier: the same reference set
//!   partitioned across two `--partition`-mode backends with a
//!   `gsknn-router` front. The point is recorded under the run's
//!   `router` key — per-lane latency/qps, the fan-out+merge overhead
//!   vs the single-node headline (`merge_overhead_pct`), and the
//!   degraded fraction — so `bench-diff` gates the router tier against
//!   its own trajectory without disturbing the single-node gates.
//!   The same flag also measures **failover transparency**: a
//!   2-partition x 2-replica tier runs the f64 lane twice — healthy,
//!   and with one replica shut down a third of the way into the run —
//!   and records both under `router.replicated` (`ok_fraction` 1.0
//!   means the loss was invisible to clients; the killed run's
//!   p99/qps against the healthy run's is the cost of the failover).
//!
//! The server runs the sharded hot path with `shards: 0` (auto: one
//! shard per available core) and adaptive coalescing — the
//! configuration `gsknn-cli serve` deployments are expected to use.
//! The resolved config is recorded in each run's `server_cfg` so the
//! trajectory distinguishes coalescing policies.
//!
//! Besides the per-lane latency quantiles, each run records a `server`
//! section from the drained server's final report: flush-reason counts
//! (model / deadline / drain), the realized mean batch size, and the
//! per-lane roofline bound-class rows — the numbers `gsknn-cli
//! bench-diff` gates on.

use dataset::PointSet;
use gsknn_serve::{Client, Outcome, ServeIndex, Server, ServerConfig};
use serde_json::Value;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn default_out() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json")
}

struct Args {
    smoke: bool,
    out: PathBuf,
    warmup: usize,
    duration_ms: u64,
    clients: Vec<usize>,
    router: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        smoke: false,
        out: default_out(),
        warmup: 0,
        duration_ms: 0,
        clients: Vec::new(),
        router: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => out.smoke = true,
            "--out" => out.out = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--warmup" => {
                out.warmup = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--duration-ms" => {
                out.duration_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--clients" => {
                let list = args.next().unwrap_or_else(|| usage());
                out.clients = list
                    .split(',')
                    .map(|v| v.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if out.clients.is_empty() || out.clients.contains(&0) {
                    usage();
                }
            }
            "--router" => out.router = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    out
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_serve [--smoke] [--out F] [--warmup N] [--duration-ms D] \
         [--clients N,N,...] [--router]"
    );
    std::process::exit(2);
}

/// One precision's measured workload.
struct LaneResult {
    precision: &'static str,
    queries: usize,
    ok: usize,
    p50_us: f64,
    p99_us: f64,
    qps: f64,
}

impl LaneResult {
    fn to_json(&self) -> Value {
        serde_json::json!({
            "precision": self.precision,
            "queries": self.queries,
            "ok": self.ok,
            "p50_us": self.p50_us,
            "p99_us": self.p99_us,
            "qps": self.qps,
        })
    }
}

fn quantile_us(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx].as_secs_f64() * 1e6
}

/// `clients` threads each fire `warmup` unrecorded then `per_client`
/// recorded single-point queries (or loop for `duration_ms` when that is
/// nonzero) and report their measured round trips.
#[allow(clippy::too_many_arguments)]
fn run_lane<T: gsknn_core::FusedScalar>(
    addr: std::net::SocketAddr,
    queries: &PointSet,
    clients: usize,
    per_client: usize,
    deadline_ms: u32,
    k: usize,
    warmup: usize,
    duration_ms: u64,
) -> LaneResult {
    let cast = queries.cast::<T>();
    let per_thread: Vec<(Vec<Duration>, usize, f64)> = std::thread::scope(|s| {
        (0..clients)
            .map(|c| {
                let cast = &cast;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for i in 0..warmup {
                        let q = cast.point((c * warmup + i) % cast.len());
                        let _ = client.query::<T>(q, 1, k, deadline_ms).expect("warmup");
                    }
                    let measure_start = Instant::now();
                    let deadline = (duration_ms > 0)
                        .then(|| measure_start + Duration::from_millis(duration_ms));
                    let mut rtts = Vec::with_capacity(per_client);
                    let mut ok = 0usize;
                    let mut i = 0usize;
                    loop {
                        match deadline {
                            Some(d) => {
                                if Instant::now() >= d {
                                    break;
                                }
                            }
                            None => {
                                if i >= per_client {
                                    break;
                                }
                            }
                        }
                        let q = cast.point((c * per_client + i) % cast.len());
                        let reply = client.query::<T>(q, 1, k, deadline_ms).expect("query");
                        rtts.push(reply.rtt);
                        if matches!(reply.outcome, Outcome::Neighbors(_) | Outcome::Degraded(_)) {
                            ok += 1;
                        }
                        i += 1;
                    }
                    (rtts, ok, measure_start.elapsed().as_secs_f64())
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    // wall clock of the measuring loops only — warmup must not dilute qps
    let wall = per_thread
        .iter()
        .map(|(_, _, w)| *w)
        .fold(f64::MIN_POSITIVE, f64::max);
    let mut rtts: Vec<Duration> = per_thread
        .iter()
        .flat_map(|(r, _, _)| r.iter().copied())
        .collect();
    let ok = per_thread.iter().map(|(_, o, _)| o).sum();
    rtts.sort_unstable();
    LaneResult {
        precision: <T as gsknn_core::GsknnScalar>::NAME,
        queries: rtts.len(),
        ok,
        p50_us: quantile_us(&rtts, 0.50),
        p99_us: quantile_us(&rtts, 0.99),
        qps: rtts.len() as f64 / wall,
    }
}

/// Partition the reference set two ways, `replicas` servers per slice,
/// front them with a scatter-gather router, and drive the same workload
/// through it. The delta against the single-node headline lanes is the
/// cost of the fan-out + merge tier.
struct RouterTier {
    addr: std::net::SocketAddr,
    backends: Vec<String>,
    handles: Vec<std::thread::JoinHandle<gsknn_serve::ServeReport>>,
    router_handle: std::thread::JoinHandle<gsknn_router::RouterReport>,
}

fn spawn_router_tier(n_refs: usize, d: usize, replicas: u16) -> RouterTier {
    use gsknn_serve::PartitionCfg;

    const PARTS: u16 = 2;
    // same deterministic reference set as the headline index
    let refs = dataset::uniform(n_refs, d, 2026);
    let mut backends = Vec::new();
    let mut handles = Vec::new();
    // partition-major: p0r0, p0r1, ..., p1r0, ...
    for id in 0..PARTS {
        let lo = n_refs * id as usize / PARTS as usize;
        let hi = n_refs * (id as usize + 1) / PARTS as usize;
        for r in 0..replicas {
            let slice = PointSet::from_vec(d, hi - lo, refs.as_slice()[lo * d..hi * d].to_vec());
            let cfg = ServerConfig {
                shards: 0,
                adaptive_coalesce: true,
                partition: Some(PartitionCfg {
                    id,
                    total: PARTS,
                    offset: lo as u32,
                    epoch: 1,
                    replica: r,
                    replicas,
                }),
                ..ServerConfig::default()
            };
            let index = ServeIndex::build(slice, 4, 512, 7);
            let server = Server::bind(cfg, index).expect("bind backend");
            backends.push(server.local_addr().expect("backend addr").to_string());
            handles.push(std::thread::spawn(move || server.run()));
        }
    }
    let router = gsknn_router::Router::bind(gsknn_router::RouterConfig {
        backends: backends.clone(),
        replicas: replicas as usize,
        addr: "127.0.0.1:0".to_string(),
        ..gsknn_router::RouterConfig::default()
    })
    .expect("bind router");
    let addr = router.local_addr().expect("router addr");
    let router_handle = std::thread::spawn(move || router.run());
    RouterTier {
        addr,
        backends,
        handles,
        router_handle,
    }
}

impl RouterTier {
    /// Shut the router and every still-live backend down; dead replicas
    /// (killed mid-run) are skipped.
    fn drain(self) -> gsknn_router::RouterReport {
        Client::connect(self.addr)
            .and_then(|mut c| c.shutdown())
            .expect("router shutdown");
        let report = self.router_handle.join().expect("router thread");
        for b in &self.backends {
            if let Ok(mut c) = Client::connect(b.as_str()) {
                let _ = c.shutdown();
            }
        }
        for h in self.handles {
            h.join().expect("backend thread");
        }
        report
    }
}

#[allow(clippy::too_many_arguments)]
fn run_router(
    n_refs: usize,
    d: usize,
    queries: &PointSet,
    clients: usize,
    per_client: usize,
    deadline_ms: u32,
    k: usize,
    duration_ms: u64,
) -> (Vec<LaneResult>, gsknn_router::RouterReport) {
    let tier = spawn_router_tier(n_refs, d, 1);
    let lanes = vec![
        run_lane::<f64>(
            tier.addr,
            queries,
            clients,
            per_client,
            deadline_ms,
            k,
            0,
            duration_ms,
        ),
        run_lane::<f32>(
            tier.addr,
            queries,
            clients,
            per_client,
            deadline_ms,
            k,
            0,
            duration_ms,
        ),
    ];
    (lanes, tier.drain())
}

/// The failover-transparency measurement: the same workload through a
/// 2-partition x 2-replica tier, once healthy and once with a replica
/// shut down a third of the way into the run. Both lanes are
/// duration-based so the kill lands mid-stream; the interesting numbers
/// are the killed run's p99/qps against the healthy run's, and its
/// ok-fraction (1.0 = the loss was invisible to clients).
fn run_router_replicated(
    n_refs: usize,
    d: usize,
    queries: &PointSet,
    clients: usize,
    deadline_ms: u32,
    k: usize,
    duration_ms: u64,
) -> serde_json::Value {
    let healthy_tier = spawn_router_tier(n_refs, d, 2);
    let healthy = run_lane::<f64>(
        healthy_tier.addr,
        queries,
        clients,
        0,
        deadline_ms,
        k,
        0,
        duration_ms,
    );
    let healthy_report = healthy_tier.drain();
    assert_eq!(
        healthy.queries, healthy.ok,
        "replicated router (healthy): every query must answer Ok"
    );

    let killed_tier = spawn_router_tier(n_refs, d, 2);
    // Kill a replica of partition 1 (backends partition-major, indices
    // 2 and 3) a third of the way into the run — specifically whichever
    // one the router is actually routing to, so the failover machinery
    // is exercised rather than a cold standby quietly disappearing.
    let router_addr = killed_tier.addr;
    let candidates = [
        killed_tier.backends[2].clone(),
        killed_tier.backends[3].clone(),
    ];
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(duration_ms / 3));
        let txt = Client::connect(router_addr)
            .and_then(|mut c| c.metrics_text())
            .unwrap_or_default();
        let replies = |b: usize| {
            txt.lines()
                .find_map(|l| {
                    l.strip_prefix(&format!(
                        "gsknn_router_backend_replies_total{{backend=\"{b}\"}} "
                    ))
                })
                .and_then(|v| v.trim().parse::<u64>().ok())
                .unwrap_or(0)
        };
        let victim = if replies(2) >= replies(3) { 0 } else { 1 };
        if let Ok(mut c) = Client::connect(candidates[victim].as_str()) {
            let _ = c.shutdown();
        }
        victim
    });
    let killed = run_lane::<f64>(
        killed_tier.addr,
        queries,
        clients,
        0,
        deadline_ms,
        k,
        0,
        duration_ms,
    );
    let victim_replica = killer.join().expect("killer thread");
    let killed_report = killed_tier.drain();

    let ok_fraction = if killed.queries > 0 {
        killed.ok as f64 / killed.queries as f64
    } else {
        0.0
    };
    println!(
        "router replicated healthy: {} queries, p50 {:.0} us, p99 {:.0} us, {:.0} qps",
        healthy.queries, healthy.p50_us, healthy.p99_us, healthy.qps
    );
    println!(
        "router replicated killed:  {} queries ({} ok, {:.4} ok-fraction), p50 {:.0} us, \
         p99 {:.0} us, {:.0} qps, {} failovers, {} hedges won, {} lost, {} degraded",
        killed.queries,
        killed.ok,
        ok_fraction,
        killed.p50_us,
        killed.p99_us,
        killed.qps,
        killed_report.replica_failovers,
        killed_report.replica_hedges_won,
        killed_report.replica_hedges_lost,
        killed_report.degraded,
    );
    serde_json::json!({
        "replicas": 2,
        "duration_ms": duration_ms,
        "healthy": healthy.to_json(),
        "killed": {
            "lane": killed.to_json(),
            "victim": format!("partition 1 replica {victim_replica}"),
            "ok_fraction": ok_fraction,
            "replica_failovers": killed_report.replica_failovers,
            "replica_hedges_won": killed_report.replica_hedges_won,
            "replica_hedges_lost": killed_report.replica_hedges_lost,
            "degraded": killed_report.degraded,
        },
        "healthy_degraded": healthy_report.degraded,
    })
}

fn main() {
    let args = parse_args();
    // Fixed workload: changing it would break comparability across PRs.
    let (n_refs, clients, per_client) = if args.smoke {
        (2000, 4, 10)
    } else {
        (8192, 8, 50)
    };
    let (d, k, deadline_ms) = (16, 8, 50u32);

    let refs = dataset::uniform(n_refs, d, 2026);
    let queries = dataset::uniform(256, d, 777);
    let index = ServeIndex::build(refs, 4, 512, 7);
    // the deployment-shaped config: one shard per core, adaptive flushes
    let cfg = ServerConfig {
        shards: 0,
        adaptive_coalesce: true,
        ..ServerConfig::default()
    };
    let n_shards = cfg.resolved_shards();
    let server = Server::bind(cfg, index).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());

    let lanes = vec![
        run_lane::<f64>(
            addr,
            &queries,
            clients,
            per_client,
            deadline_ms,
            k,
            args.warmup,
            args.duration_ms,
        ),
        run_lane::<f32>(
            addr,
            &queries,
            clients,
            per_client,
            deadline_ms,
            k,
            args.warmup,
            args.duration_ms,
        ),
    ];

    // the saturation sweep: same workload shape, varying only the number
    // of closed-loop clients; total queries per point stay roughly fixed
    // so high-client points don't dominate the wall clock
    let sweep: Vec<Value> = args
        .clients
        .iter()
        .map(|&c| {
            let pc = (4096 / c).max(4);
            let point = [
                run_lane::<f64>(addr, &queries, c, pc, deadline_ms, k, 0, 0),
                run_lane::<f32>(addr, &queries, c, pc, deadline_ms, k, 0, 0),
            ];
            for lane in &point {
                println!(
                    "sweep {c:>5} clients {}: {} queries ({} ok), p50 {:.0} us, \
                     p99 {:.0} us, {:.0} qps",
                    lane.precision, lane.queries, lane.ok, lane.p50_us, lane.p99_us, lane.qps
                );
            }
            serde_json::json!({
                "clients": c,
                "per_client": pc,
                "lanes": (Value::Array(point.iter().map(LaneResult::to_json).collect())),
            })
        })
        .collect();

    // the scatter-gather tier, measured against the headline lanes
    let router_section: Option<Value> = args.router.then(|| {
        let (rlanes, rreport) = run_router(
            n_refs,
            d,
            &queries,
            clients,
            per_client,
            deadline_ms,
            k,
            args.duration_ms,
        );
        let overhead = |r: &LaneResult| -> Option<f64> {
            lanes
                .iter()
                .find(|l| l.precision == r.precision)
                .filter(|l| l.p50_us > 0.0)
                .map(|l| (r.p50_us - l.p50_us) / l.p50_us * 100.0)
        };
        for lane in &rlanes {
            println!(
                "router {}: {} queries ({} ok), p50 {:.0} us, p99 {:.0} us, {:.0} qps{}",
                lane.precision,
                lane.queries,
                lane.ok,
                lane.p50_us,
                lane.p99_us,
                lane.qps,
                match overhead(lane) {
                    Some(o) => format!(", merge overhead {o:+.1}% vs single-node p50"),
                    None => String::new(),
                }
            );
            assert_eq!(
                lane.queries, lane.ok,
                "router {}: every query of the fixed workload must answer Ok",
                lane.precision
            );
        }
        let degraded_fraction = if rreport.queries > 0 {
            rreport.degraded as f64 / rreport.queries as f64
        } else {
            0.0
        };
        // per-stage time attribution over the whole run (zeroes unless
        // the backends were built with `obs` and returned span annexes)
        if rreport.stages.total_ns() > 0 {
            println!("router stages: {}", rreport.stages.render_line());
        }
        // the replicated tier runs duration-based so the mid-run kill
        // lands inside the measuring window whatever the host's speed
        let rep_duration = if args.duration_ms > 0 {
            args.duration_ms
        } else if args.smoke {
            600
        } else {
            1500
        };
        let replicated =
            run_router_replicated(n_refs, d, &queries, clients, deadline_ms, k, rep_duration);
        serde_json::json!({
            "backends": rreport.backends,
            "replicated": replicated,
            "lanes": (Value::Array(
                rlanes
                    .iter()
                    .map(|l| {
                        let mut v = l.to_json();
                        if let (Some(o), Value::Object(m)) = (overhead(l), &mut v) {
                            m.push(("merge_overhead_pct".to_string(), serde_json::json!(o)));
                        }
                        v
                    })
                    .collect(),
            )),
            "degraded_fraction": degraded_fraction,
            "hedges": rreport.hedges,
            "epoch_rejects": rreport.epoch_rejects,
            "attribution": rreport.stages.to_json(),
        })
    });

    Client::connect(addr)
        .and_then(|mut c| c.shutdown())
        .expect("shutdown");
    let report = handle.join().expect("server thread");

    for lane in &lanes {
        println!(
            "{}: {} queries ({} ok), p50 {:.0} us, p99 {:.0} us, {:.0} qps",
            lane.precision, lane.queries, lane.ok, lane.p50_us, lane.p99_us, lane.qps
        );
        assert_eq!(
            lane.queries, lane.ok,
            "{}: every query of the fixed workload must answer Ok",
            lane.precision
        );
    }
    // server-side accounting: flush reasons and the roofline bound-class
    // summary (empty without the serve crate's `obs` feature)
    println!(
        "server: {} batches (flushes: {} model, {} deadline, {} drain), mean batch m {:.2}",
        report.batches,
        report.flushes.model,
        report.flushes.deadline,
        report.flushes.drain,
        if report.batches > 0 {
            report.queries as f64 / report.batches as f64
        } else {
            0.0
        }
    );
    for row in &report.roofline {
        if row.total() == 0 {
            continue;
        }
        println!(
            "roofline {}: {} compute, {} bandwidth, {} coalesce, {} queue{}",
            row.lane,
            row.counts[0],
            row.counts[1],
            row.counts[2],
            row.counts[3],
            match row.headroom_mean() {
                Some(h) => format!(" | headroom x{h:.2}"),
                None => String::new(),
            }
        );
    }

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let run = serde_json::json!({
        "unix_time": unix_time,
        "smoke": args.smoke,
        "warmup": args.warmup,
        "duration_ms": args.duration_ms,
        "workload": {
            "n_refs": n_refs, "d": d, "k": k, "deadline_ms": deadline_ms,
            "clients": clients, "per_client": per_client,
        },
        "server_cfg": {
            "shards": n_shards,
            "adaptive_coalesce": true,
        },
        "lanes": (Value::Array(lanes.iter().map(LaneResult::to_json).collect())),
        "sweep": (Value::Array(sweep)),
        "router": (router_section.unwrap_or(Value::Null)),
        "server": {
            "queries": report.queries,
            "batches": report.batches,
            "batch_m_mean": if report.batches > 0 {
                report.queries as f64 / report.batches as f64
            } else {
                0.0
            },
            "flushes": {
                "model": report.flushes.model,
                "deadline": report.flushes.deadline,
                "drain": report.flushes.drain,
            },
            "coalesce_ratio": report.flushes.coalesce_ratio(),
            "roofline": (Value::Array(
                report.roofline.iter().map(|r| r.to_json()).collect(),
            )),
        },
    });

    // Append to the existing trajectory when the file already holds one
    // (and start fresh on a missing or malformed file).
    let mut doc = std::fs::read_to_string(&args.out)
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok())
        .filter(|v: &Value| matches!(v.get("runs"), Some(Value::Array(_))))
        .unwrap_or_else(|| {
            serde_json::json!({
                "benchmark": "serve",
                "metric": "client round-trip latency (p50/p99 us) and throughput (qps)",
                "runs": [],
            })
        });
    if let Value::Object(members) = &mut doc {
        if let Some((_, Value::Array(runs))) = members.iter_mut().find(|(k, _)| k == "runs") {
            runs.push(run);
        }
    }
    if let Some(parent) = args.out.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&args.out, doc.to_string_pretty()).expect("write BENCH_serve.json");
    println!("trajectory appended to {}", args.out.display());
}
