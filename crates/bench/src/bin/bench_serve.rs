//! Persisted serving-latency trajectory: drive a fixed workload of
//! single-point queries through an in-process `gsknn-serve` server in
//! both precisions, and append client-measured p50/p99 round-trip
//! latency plus throughput to a repo-root `BENCH_serve.json` so
//! successive PRs can compare the serving stack against history.
//!
//! The workload is deliberately coalescer-bound: several concurrent
//! clients issue `m = 1` queries, so the measured latency is dominated
//! by the model-driven batch coalescing the crate exists to provide —
//! a regression in the flush policy or the lane plumbing shows up here
//! before it shows up in a kernel benchmark.
//!
//! Flags:
//! * `--smoke` — tiny workload (CI: proves the harness runs, not perf)
//! * `--out F` — output path (default `<repo root>/BENCH_serve.json`)

use dataset::PointSet;
use gsknn_serve::{Client, Outcome, ServeIndex, Server, ServerConfig};
use serde_json::Value;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn default_out() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json")
}

struct Args {
    smoke: bool,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut out = Args {
        smoke: false,
        out: default_out(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => out.smoke = true,
            "--out" => out.out = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    out
}

fn usage() -> ! {
    eprintln!("usage: bench_serve [--smoke] [--out F]");
    std::process::exit(2);
}

/// One precision's measured workload.
struct LaneResult {
    precision: &'static str,
    queries: usize,
    ok: usize,
    p50_us: f64,
    p99_us: f64,
    qps: f64,
}

impl LaneResult {
    fn to_json(&self) -> Value {
        serde_json::json!({
            "precision": self.precision,
            "queries": self.queries,
            "ok": self.ok,
            "p50_us": self.p50_us,
            "p99_us": self.p99_us,
            "qps": self.qps,
        })
    }
}

fn quantile_us(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx].as_secs_f64() * 1e6
}

/// `clients` threads each fire `per_client` single-point queries and
/// report their measured round trips.
fn run_lane<T: gsknn_core::FusedScalar>(
    addr: std::net::SocketAddr,
    queries: &PointSet,
    clients: usize,
    per_client: usize,
    deadline_ms: u32,
    k: usize,
) -> LaneResult {
    let cast = queries.cast::<T>();
    let t0 = Instant::now();
    let per_thread: Vec<(Vec<Duration>, usize)> = std::thread::scope(|s| {
        (0..clients)
            .map(|c| {
                let cast = &cast;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut rtts = Vec::with_capacity(per_client);
                    let mut ok = 0usize;
                    for i in 0..per_client {
                        let q = cast.point((c * per_client + i) % cast.len());
                        let reply = client.query::<T>(q, 1, k, deadline_ms).expect("query");
                        rtts.push(reply.rtt);
                        if matches!(reply.outcome, Outcome::Neighbors(_) | Outcome::Degraded(_)) {
                            ok += 1;
                        }
                    }
                    (rtts, ok)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    let mut rtts: Vec<Duration> = per_thread
        .iter()
        .flat_map(|(r, _)| r.iter().copied())
        .collect();
    let ok = per_thread.iter().map(|(_, o)| o).sum();
    rtts.sort_unstable();
    LaneResult {
        precision: <T as gsknn_core::GsknnScalar>::NAME,
        queries: rtts.len(),
        ok,
        p50_us: quantile_us(&rtts, 0.50),
        p99_us: quantile_us(&rtts, 0.99),
        qps: rtts.len() as f64 / wall,
    }
}

fn main() {
    let args = parse_args();
    // Fixed workload: changing it would break comparability across PRs.
    let (n_refs, clients, per_client) = if args.smoke {
        (2000, 4, 10)
    } else {
        (8192, 8, 50)
    };
    let (d, k, deadline_ms) = (16, 8, 50u32);

    let refs = dataset::uniform(n_refs, d, 2026);
    let queries = dataset::uniform(256, d, 777);
    let index = ServeIndex::build(refs, 4, 512, 7);
    let server = Server::bind(ServerConfig::default(), index).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run());

    let lanes = vec![
        run_lane::<f64>(addr, &queries, clients, per_client, deadline_ms, k),
        run_lane::<f32>(addr, &queries, clients, per_client, deadline_ms, k),
    ];

    Client::connect(addr)
        .and_then(|mut c| c.shutdown())
        .expect("shutdown");
    handle.join().expect("server thread");

    for lane in &lanes {
        println!(
            "{}: {} queries ({} ok), p50 {:.0} us, p99 {:.0} us, {:.0} qps",
            lane.precision, lane.queries, lane.ok, lane.p50_us, lane.p99_us, lane.qps
        );
        assert_eq!(
            lane.queries, lane.ok,
            "{}: every query of the fixed workload must answer Ok",
            lane.precision
        );
    }

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let run = serde_json::json!({
        "unix_time": unix_time,
        "smoke": args.smoke,
        "workload": {
            "n_refs": n_refs, "d": d, "k": k, "deadline_ms": deadline_ms,
            "clients": clients, "per_client": per_client,
        },
        "lanes": (Value::Array(lanes.iter().map(LaneResult::to_json).collect())),
    });

    // Append to the existing trajectory when the file already holds one
    // (and start fresh on a missing or malformed file).
    let mut doc = std::fs::read_to_string(&args.out)
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok())
        .filter(|v: &Value| matches!(v.get("runs"), Some(Value::Array(_))))
        .unwrap_or_else(|| {
            serde_json::json!({
                "benchmark": "serve",
                "metric": "client round-trip latency (p50/p99 us) and throughput (qps)",
                "runs": [],
            })
        });
    if let Value::Object(members) = &mut doc {
        if let Some((_, Value::Array(runs))) = members.iter_mut().find(|(k, _)| k == "runs") {
            runs.push(run);
        }
    }
    if let Some(parent) = args.out.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&args.out, doc.to_string_pretty()).expect("write BENCH_serve.json");
    println!("trajectory appended to {}", args.out.display());
}
