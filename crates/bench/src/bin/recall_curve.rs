//! Recall-vs-work curves for the approximate all-NN solvers
//! (reproduction extension): how fast the randomized-KD-tree iteration
//! and the LSH tables converge to exact neighbors, and what each
//! iteration costs — the practical trade-off the paper's §1 framing
//! ("iterate ... until convergence") implies but does not plot.

use bench::{print_table, HarnessArgs};
use dataset::{gaussian_embedded, DistanceKind};
use gsknn_core::GsknnConfig;
use knn_ref::oracle;
use lsh::{LshConfig, LshParams, LshSolver};
use rkdt::{AllNnSolver, GsknnLeaf, RkdtConfig};

fn main() {
    let args = HarnessArgs::parse();
    let n = if args.full { 20_000 } else { 4_000 };
    let (d, k) = (32usize, 8usize);
    let x = gaussian_embedded(n, d, 10, 7);
    let ids: Vec<usize> = (0..n).collect();
    println!("recall curves: N = {n}, d = {d} (intrinsic 10), k = {k}");
    println!("computing exact reference (brute force)...");
    let exact = oracle::exact(&x, &ids, &ids, k, DistanceKind::SqL2);

    // rkdt: recall after each tree
    let solver = AllNnSolver::new(RkdtConfig {
        leaf_size: 512,
        iterations: 10,
        seed: 1,
        parallel_leaves: true,
        lpt_workers: None,
    });
    let (_, stats) = solver.solve(
        &x,
        k,
        || GsknnLeaf::new(GsknnConfig::default(), DistanceKind::SqL2),
        Some(&exact),
    );
    let rows: Vec<Vec<String>> = stats
        .iter()
        .map(|s| {
            vec![
                s.iter.to_string(),
                format!("{:.1}%", 100.0 * s.recall.unwrap()),
                format!("{:.1}%", 100.0 * s.changed_fraction),
                format!("{:.3}", s.kernel_seconds),
            ]
        })
        .collect();
    print_table(
        "randomized KD-tree (512-point leaves)",
        &["iter", "recall", "rows improved", "kernel s"],
        &rows,
    );

    // LSH: recall after each table, for two bucket widths
    for width in [1.0f64, 2.0] {
        let (_, tstats) = LshSolver::new(LshConfig {
            tables: 8,
            params: LshParams {
                hashes_per_table: 4,
                bucket_width: width,
            },
            seed: 3,
            parallel_buckets: true,
            max_bucket: 2048,
            probes: 0,
        })
        .solve(
            &x,
            k,
            || GsknnLeaf::new(GsknnConfig::default(), DistanceKind::SqL2),
            Some(&exact),
        );
        let rows: Vec<Vec<String>> = tstats
            .iter()
            .map(|s| {
                vec![
                    s.table.to_string(),
                    format!("{:.1}%", 100.0 * s.recall.unwrap()),
                    s.buckets.to_string(),
                    format!("{:.1}%", 100.0 * s.covered as f64 / n as f64),
                ]
            })
            .collect();
        print_table(
            &format!("LSH (K = 4 hashes/table, w = {width})"),
            &["table", "recall", "buckets", "coverage"],
            &rows,
        );
    }
}
