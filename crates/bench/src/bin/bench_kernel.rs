//! Persisted kernel-GFLOPS trajectory: time the fused GSKNN kernel and
//! the GEMM+heap reference over a fixed grid of (m, n, d, k) shapes in
//! both precisions, and append the results to a repo-root
//! `BENCH_kernel.json` so successive PRs can compare performance against
//! history instead of a vibe. The metric is the paper's
//! `(2d+3)·m·n / T` GFLOPS.
//!
//! Flags:
//! * `--smoke`   — tiny shapes (CI: proves the harness runs, not perf)
//! * `--reps N`  — timing repetitions, best-of (default 3)
//! * `--out F`   — output path (default `<repo root>/BENCH_kernel.json`)

use bench::{best_of, gflops, print_table};
use dataset::DistanceKind;
use gemm_kernel::GemmScalar;
use gsknn_core::{FusedScalar, GemmParams, Gsknn, GsknnConfig, MachineParams};
use gsknn_obs::roofline::{classify, RooflineInputs};
use knn_ref::GemmKnn;
use serde_json::Value;
use std::path::PathBuf;

/// Default output path: the repository root, resolved relative to this
/// crate so the file lands in the same place regardless of the cwd.
fn default_out() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernel.json")
}

struct Args {
    smoke: bool,
    reps: usize,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut out = Args {
        smoke: false,
        reps: 3,
        out: default_out(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => out.smoke = true,
            "--reps" => {
                out.reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out.out = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    out
}

fn usage() -> ! {
    eprintln!("usage: bench_kernel [--smoke] [--reps N] [--out F]");
    std::process::exit(2);
}

/// One measured cell of the grid.
struct Row {
    m: usize,
    n: usize,
    d: usize,
    k: usize,
    precision: &'static str,
    kernel: &'static str,
    seconds: f64,
    gflops: f64,
    /// Roofline bound class against the §2.6 asymptotes (an offline run
    /// has no coalescer, so this is compute vs bandwidth).
    bound: &'static str,
    /// Predicted asymptote over achieved rate on the binding resource.
    headroom: f64,
}

impl Row {
    fn to_json(&self) -> Value {
        serde_json::json!({
            "m": self.m, "n": self.n, "d": self.d, "k": self.k,
            "precision": self.precision, "kernel": self.kernel,
            "seconds": self.seconds, "gflops": self.gflops,
            "bound": self.bound, "headroom": self.headroom,
        })
    }
}

/// Classify one timed shape against the scalar-rescaled machine model:
/// achieved flops/s and bytes/s (the model's slow-memory element count —
/// pack R `nd + 2n`, pack Q `dm + 2m`, writeback `mk`) versus the
/// asymptotes `τf` and `1/τb`.
fn classify_row(
    m: usize,
    n: usize,
    d: usize,
    k: usize,
    elem_bytes: usize,
    machine: &MachineParams,
    seconds: f64,
) -> (&'static str, f64) {
    let flops = (2 * d + 3) as f64 * m as f64 * n as f64;
    let elems = (n * d + 2 * n + d * m + 2 * m + m * k) as f64;
    let v = classify(&RooflineInputs {
        flops,
        bytes: elems * elem_bytes as f64,
        measured_s: seconds,
        mem_phase_s: 0.0,
        compute_phase_s: 0.0,
        peak_flops_per_s: machine.tau_f,
        peak_bytes_per_s: elem_bytes as f64 / machine.tau_b,
        batch_m: m,
        target_m: 0,
        deadline_flush: false,
        backlog: 0,
    });
    (v.class.name(), v.headroom)
}

/// Time the fused kernel and the GEMM reference for one shape in one
/// precision. The executors are constructed once and reused across reps,
/// so the packing workspaces are warm — this measures the kernel, not
/// the allocator.
fn bench_shape<T: FusedScalar + GemmScalar>(
    x64: &dataset::PointSet,
    m: usize,
    n: usize,
    d: usize,
    k: usize,
    reps: usize,
) -> Vec<Row> {
    let x = x64.cast::<T>();
    let q: Vec<usize> = (0..m).collect();
    let r: Vec<usize> = (0..n).collect();

    let mut exec = Gsknn::<T>::new(GsknnConfig::for_scalar::<T>());
    let t_fused = best_of(reps, || {
        std::hint::black_box(exec.run(&x, &q, &r, k, DistanceKind::SqL2));
    });

    let mut gemm = GemmKnn::<T>::new(GemmParams::native_for::<T>(), false);
    let t_gemm = best_of(reps, || {
        std::hint::black_box(gemm.run(&x, &q, &r, k));
    });

    let machine = MachineParams::ivy_bridge_1core().for_scalar::<T>();
    [("fused", t_fused), ("gemm", t_gemm)]
        .into_iter()
        .map(|(kernel, t)| {
            let seconds = t.as_secs_f64();
            let (bound, headroom) = classify_row(m, n, d, k, T::BYTES, &machine, seconds);
            Row {
                m,
                n,
                d,
                k,
                precision: <T as gsknn_core::GsknnScalar>::NAME,
                kernel,
                seconds,
                gflops: gflops(m, n, d, t),
                bound,
                headroom,
            }
        })
        .collect()
}

fn main() {
    let args = parse_args();
    // The trajectory grid is fixed on purpose: changing it would break
    // comparability across PRs. d ≥ 64 rows are the ones the f32-speedup
    // acceptance gate reads.
    let shapes: Vec<(usize, usize, usize, usize)> = if args.smoke {
        vec![(256, 256, 16, 8), (256, 256, 64, 8)]
    } else {
        vec![
            (4096, 4096, 16, 16),
            (4096, 4096, 64, 16),
            (4096, 4096, 256, 16),
        ]
    };

    let mut rows: Vec<Row> = Vec::new();
    for &(m, n, d, k) in &shapes {
        let x64 = dataset::uniform(m.max(n), d, 2026);
        rows.extend(bench_shape::<f64>(&x64, m, n, d, k, args.reps));
        rows.extend(bench_shape::<f32>(&x64, m, n, d, k, args.reps));
        eprintln!("measured m={m} n={n} d={d} k={k}");
    }

    // Per-shape fused f32-over-f64 speedup — the headline number.
    let mut speedups: Vec<(String, f64)> = Vec::new();
    for &(m, n, d, k) in &shapes {
        let find = |precision: &str| {
            rows.iter()
                .find(|r| {
                    r.m == m
                        && r.d == d
                        && r.k == k
                        && r.precision == precision
                        && r.kernel == "fused"
                })
                .map(|r| r.gflops)
        };
        if let (Some(g32), Some(g64)) = (find("f32"), find("f64")) {
            speedups.push((format!("m{m}_n{n}_d{d}_k{k}"), g32 / g64));
        }
    }

    let mut table = Vec::new();
    for r in &rows {
        table.push(vec![
            format!("{}x{}", r.m, r.n),
            r.d.to_string(),
            r.k.to_string(),
            r.precision.to_string(),
            r.kernel.to_string(),
            format!("{:.1}", r.seconds * 1e3),
            format!("{:.2}", r.gflops),
            r.bound.to_string(),
            format!("{:.2}", r.headroom),
        ]);
    }
    print_table(
        "kernel GFLOPS trajectory",
        &[
            "m x n", "d", "k", "prec", "kernel", "ms", "GFLOPS", "bound", "headroom",
        ],
        &table,
    );
    for (shape, s) in &speedups {
        println!("fused f32/f64 speedup @ {shape}: {s:.2}x");
    }

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let run = serde_json::json!({
        "unix_time": unix_time,
        "smoke": args.smoke,
        "reps": args.reps,
        "rows": (Value::Array(rows.iter().map(Row::to_json).collect())),
        "fused_f32_over_f64": (Value::Object(
            speedups
                .iter()
                .map(|(shape, s)| (shape.clone(), Value::from(*s)))
                .collect(),
        )),
    });

    // Append to the existing trajectory when the file already holds one
    // (and start fresh on a missing or malformed file).
    let mut doc = std::fs::read_to_string(&args.out)
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok())
        .filter(|v: &Value| matches!(v.get("runs"), Some(Value::Array(_))))
        .unwrap_or_else(|| {
            serde_json::json!({
                "benchmark": "kernel",
                "metric": "(2d+3)*m*n / seconds / 1e9",
                "runs": [],
            })
        });
    if let Value::Object(members) = &mut doc {
        if let Some((_, Value::Array(runs))) = members.iter_mut().find(|(k, _)| k == "runs") {
            runs.push(run);
        }
    }
    if let Some(parent) = args.out.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    std::fs::write(&args.out, doc.to_string_pretty()).expect("write BENCH_kernel.json");
    println!("trajectory appended to {}", args.out.display());
}
