//! Table 4 — the theoretical runtime-breakdown table, instantiated.
//!
//! The paper's Table 4 lists the slow-memory terms of the model
//! symbolically; this harness evaluates every row for concrete problem
//! sizes (the Figure 4 configurations) and all three approaches, showing
//! *where* the model says each implementation's memory time goes — e.g.
//! that the GEMM approach's `collect Q,R` + `C` traffic dwarfs everything
//! at low d, and that the `Cc` spill appears exactly when d > dc.

use bench::{print_table, HarnessArgs};
use gsknn_core::model::Approach;
use gsknn_core::{MachineParams, Model, ProblemSize};

fn main() {
    let args = HarnessArgs::parse();
    let mn = if args.full { 8192 } else { 2048 };
    let model = Model::new(MachineParams::ivy_bridge_1core());

    println!("Table 4 reproduction: modeled slow-memory terms (ms), m = n = {mn}");
    println!("machine constants: paper Ivy Bridge");

    for (d, k) in [(16usize, 16usize), (64, 16), (64, 2048), (1024, 16)] {
        let p = ProblemSize { m: mn, n: mn, d, k };
        let mut rows = Vec::new();
        for (name, a) in [
            ("Var#1", Approach::Var1),
            ("Var#6", Approach::Var6),
            ("GEMM", Approach::Gemm),
        ] {
            for (term, secs) in model.tm_terms(&p, a) {
                rows.push(vec![
                    name.to_string(),
                    term.to_string(),
                    format!("{:.2}", secs * 1e3),
                ]);
            }
            let tm: f64 = model.tm_terms(&p, a).iter().map(|(_, v)| v).sum();
            rows.push(vec![
                name.to_string(),
                "— total Tm".to_string(),
                format!("{:.2}", tm * 1e3),
            ]);
            rows.push(vec![
                name.to_string(),
                "— Tf + To (compute)".to_string(),
                format!("{:.2}", model.t_compute(&p) * 1e3),
            ]);
        }
        print_table(
            &format!("d = {d}, k = {k}"),
            &["approach", "term", "ms"],
            &rows,
        );
    }
}
