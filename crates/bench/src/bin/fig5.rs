//! Figure 5 — efficiency (GFLOPS) as a function of `k`, with the
//! predicted and measured Var#1 → Var#6 switch-over thresholds.
//!
//! Paper parameters: p = 10, m = n = 8192, d ∈ {16, 64}, k swept to
//! 2048. Here measured single-core; the model threshold (light-blue
//! dotted line of the figure) is compared against the measured crossing
//! (purple dotted line). As an ablation, all five legal variants are
//! measured, not just the paper's two finalists.

use bench::{best_of, gflops, print_table, HarnessArgs};
use dataset::{uniform, DistanceKind};
use gsknn_core::{Gsknn, GsknnConfig, MachineParams, Model, Variant};

fn main() {
    let args = HarnessArgs::parse();
    let mn = if args.full { 8192 } else { 2048 };
    let dims: &[usize] = &[16, 64];
    let ks: Vec<usize> = [16, 32, 64, 128, 256, 512, 1024, 2048]
        .into_iter()
        .filter(|&k| k <= mn)
        .collect();
    let model = Model::new(MachineParams::ivy_bridge_1core());

    println!("Figure 5 reproduction: GFLOPS vs k, m = n = {mn}, p = 1");

    for &d in dims {
        let x = uniform(2 * mn, d, 23);
        let q: Vec<usize> = (0..mn).collect();
        let r: Vec<usize> = (mn..2 * mn).collect();

        let mut rows = Vec::new();
        let mut measured_threshold: Option<usize> = None;
        for &k in &ks {
            let measure = |variant: Variant| {
                let mut exec = Gsknn::new(GsknnConfig {
                    variant,
                    ..Default::default()
                });
                best_of(args.reps, || {
                    let t = exec.run(&x, &q, &r, k, DistanceKind::SqL2);
                    std::hint::black_box(t.len());
                })
            };
            let times: Vec<(Variant, std::time::Duration)> =
                Variant::ALL.iter().map(|&v| (v, measure(v))).collect();
            let t_v1 = times[0].1;
            let t_v6 = times[times.len() - 1].1;
            if measured_threshold.is_none() && t_v6 < t_v1 {
                measured_threshold = Some(k);
            }
            let mut row = vec![k.to_string()];
            for (v, t) in &times {
                let _ = v;
                row.push(format!("{:.2}", gflops(mn, mn, d, *t)));
            }
            rows.push(row);
            bench::json_row(
                &args,
                &serde_json::json!({
                    "experiment": "fig5", "m": mn, "n": mn, "d": d, "k": k,
                    "gflops": times.iter()
                        .map(|(v, t)| (v.name().to_string(), gflops(mn, mn, d, *t)))
                        .collect::<std::collections::BTreeMap<_, _>>(),
                }),
            );
        }
        let headers: Vec<&str> = std::iter::once("k")
            .chain(Variant::ALL.iter().map(|v| v.name()))
            .collect();
        print_table(&format!("d = {d} (GFLOPS, all variants)"), &headers, &rows);

        let predicted = model.threshold_k(mn, mn, d, *ks.last().unwrap());
        println!(
            "d = {d}: predicted Var#1->Var#6 threshold k = {}, measured crossing k = {}",
            predicted.map_or("none".to_string(), |k| k.to_string()),
            measured_threshold.map_or("none".to_string(), |k| k.to_string()),
        );
    }
}
