//! ISA ablation (reproduction extension): the same fused kernel run with
//! the scalar, AVX2+FMA and AVX-512F micro-kernels, across norms and
//! dimensions. This quantifies the paper's closing claim that porting
//! GSKNN to a new x86 generation "only requires ... rewriting the micro
//! kernel" — the outer loops, packing and selection are identical across
//! the three rows of each table.

use bench::{best_of, gflops, print_table, HarnessArgs};
use dataset::{uniform, DistanceKind};
use gsknn_core::microkernel::{set_simd_level, SimdLevel};
use gsknn_core::{Gsknn, GsknnConfig};

fn main() {
    let args = HarnessArgs::parse();
    let mn = if args.full { 4096 } else { 1024 };
    let k = 16;
    let dims: &[usize] = &[16, 64, 256];
    let levels = [
        ("scalar", SimdLevel::Scalar),
        ("avx2", SimdLevel::Avx2),
        ("avx512", SimdLevel::Avx512),
    ];

    println!("SIMD micro-kernel ablation: m = n = {mn}, k = {k} (GFLOPS)");
    #[cfg(target_arch = "x86_64")]
    {
        println!(
            "cpu support: avx2+fma = {}, avx512f = {}",
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma"),
            std::arch::is_x86_feature_detected!("avx512f"),
        );
    }

    for kind in [DistanceKind::SqL2, DistanceKind::L1, DistanceKind::LInf] {
        let mut rows = Vec::new();
        for &d in dims {
            let x = uniform(2 * mn, d, 3);
            let q: Vec<usize> = (0..mn).collect();
            let r: Vec<usize> = (mn..2 * mn).collect();
            let mut row = vec![d.to_string()];
            let mut base = None;
            for (_, level) in levels {
                set_simd_level(level);
                let mut exec = Gsknn::new(GsknnConfig::default());
                let t = best_of(args.reps, || {
                    let tb = exec.run(&x, &q, &r, k, kind);
                    std::hint::black_box(tb.len());
                });
                set_simd_level(SimdLevel::Auto);
                let g = gflops(mn, mn, d, t);
                if base.is_none() {
                    base = Some(g);
                }
                row.push(format!("{g:.2}"));
            }
            if let Some(b) = base {
                let best: f64 = row[1..]
                    .iter()
                    .map(|s| s.parse::<f64>().unwrap())
                    .fold(0.0, f64::max);
                row.push(format!("{:.1}x", best / b));
            }
            rows.push(row);
        }
        print_table(
            &format!("{} (GFLOPS per level)", kind.name()),
            &["d", "scalar", "avx2", "avx512", "best/scalar"],
            &rows,
        );
    }
}
