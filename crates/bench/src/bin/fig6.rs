//! Figure 6 — the 12-panel efficiency overview: GFLOPS vs dimension on a
//! log grid, for m = n ∈ {2048, 4096, 8192} × k ∈ {16, 128, 512, 2048},
//! GSKNN (Var#1 for k ≤ 512, Var#6 for k = 2048 — the paper's §3 rule)
//! against the GEMM+heap reference.
//!
//! Paper: p = 10, theoretical peak 248 GFLOPS. Here single-core; shapes
//! (growth with d, degradation with k, GSKNN's low-d advantage) are the
//! reproduction target, not absolute numbers. Scaled default runs the
//! m = n = 2048 row only (`--full` for all three).

use bench::{best_of, gflops, print_table, HarnessArgs};
use dataset::{uniform, DistanceKind};
use gsknn_core::{GemmParams, Gsknn, GsknnConfig};
use knn_ref::GemmKnn;

fn main() {
    let args = HarnessArgs::parse();
    let sizes: Vec<usize> = if args.full {
        vec![2048, 4096, 8192]
    } else {
        vec![2048]
    };
    let ks: &[usize] = &[16, 128, 512, 2048];
    // the paper's log-ish grid from 4 to 1028
    let dims: Vec<usize> = if args.full {
        vec![4, 8, 16, 28, 52, 100, 196, 388, 516, 772, 1028]
    } else {
        vec![4, 8, 16, 28, 52, 100, 196, 388]
    };

    println!("Figure 6 reproduction: GFLOPS vs d (log grid), p = 1");

    for &mn in &sizes {
        for &k in ks {
            if k > mn {
                continue;
            }
            let mut rows = Vec::new();
            for &d in &dims {
                let x = uniform(2 * mn, d, 31);
                let q: Vec<usize> = (0..mn).collect();
                let r: Vec<usize> = (mn..2 * mn).collect();

                let mut exec = Gsknn::new(GsknnConfig::default()); // Auto = paper rule
                let t_gsknn = best_of(args.reps, || {
                    let t = exec.run(&x, &q, &r, k, DistanceKind::SqL2);
                    std::hint::black_box(t.len());
                });
                let mut exec_ref = GemmKnn::new(GemmParams::ivy_bridge(), false);
                let t_ref = best_of(args.reps, || {
                    let (t, _) = exec_ref.run(&x, &q, &r, k);
                    std::hint::black_box(t.len());
                });

                rows.push(vec![
                    d.to_string(),
                    format!("{:.2}", gflops(mn, mn, d, t_gsknn)),
                    format!("{:.2}", gflops(mn, mn, d, t_ref)),
                    format!("{:.2}x", t_ref.as_secs_f64() / t_gsknn.as_secs_f64()),
                ]);
                bench::json_row(
                    &args,
                    &serde_json::json!({
                        "experiment": "fig6", "m": mn, "n": mn, "d": d, "k": k,
                        "gsknn_gflops": gflops(mn, mn, d, t_gsknn),
                        "ref_gflops": gflops(mn, mn, d, t_ref),
                    }),
                );
            }
            print_table(
                &format!(
                    "m = n = {mn}, k = {k} ({})",
                    if k <= 512 { "Var#1" } else { "Var#6" }
                ),
                &["d", "GSKNN", "ref", "speedup"],
                &rows,
            );
        }
    }
}
