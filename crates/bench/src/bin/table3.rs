//! Table 3 — selection-algorithm complexity, measured.
//!
//! The paper tabulates best / worst / average complexity for heap
//! selection, quickselect and merge-sort selection. This harness measures
//! all four implementations (binary heap, 4-heap, quickselect, chunked
//! merge) on the three input regimes that realize those cases:
//!
//! * **best** for the heaps: ascending distances — after the first `k`
//!   candidates everything is rejected at the root, the O(n) case;
//! * **worst** for the heaps: descending distances — every candidate
//!   beats the root, is accepted, and sifts: the O(n log k) case;
//! * **average**: uniform-random distances.
//!
//! It also verifies the growth shape: the heap's best case must scale
//! ~linearly in n, i.e. doubling n at fixed k must not much more than
//! double the time.

use bench::{best_of, print_table, HarnessArgs};
use knn_select::{
    FourHeapSelect, HeapSelect, MergeSelect, Neighbor, QuickSelect, SelectK, SortSelect,
};

fn inputs(n: usize, regime: &str) -> Vec<Neighbor> {
    match regime {
        "best" => (0..n).map(|i| Neighbor::new(i as f64, i as u32)).collect(),
        "worst" => (0..n)
            .map(|i| Neighbor::new((n - i) as f64, i as u32))
            .collect(),
        "avg" => {
            let mut state = 0x0123_4567_89AB_CDEF_u64;
            (0..n)
                .map(|i| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    Neighbor::new((state >> 11) as f64 / (1u64 << 53) as f64, i as u32)
                })
                .collect()
        }
        _ => unreachable!(),
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let ns: Vec<usize> = if args.full {
        vec![1 << 12, 1 << 14, 1 << 16]
    } else {
        vec![1 << 12, 1 << 14]
    };
    let ks: &[usize] = &[16, 512, 2048];
    let selectors: Vec<Box<dyn SelectK>> = vec![
        Box::new(HeapSelect),
        Box::new(FourHeapSelect),
        Box::new(QuickSelect),
        Box::new(MergeSelect),
        Box::new(SortSelect),
    ];

    println!("Table 3 reproduction: selection algorithms, ns/candidate");

    for regime in ["best", "worst", "avg"] {
        for &k in ks {
            let mut rows = Vec::new();
            for &n in &ns {
                if k > n {
                    continue;
                }
                let cands = inputs(n, regime);
                let mut row = vec![format!("{n}")];
                for s in &selectors {
                    let t = best_of(args.reps, || {
                        std::hint::black_box(s.select(&cands, k));
                    });
                    row.push(format!("{:.1}", t.as_nanos() as f64 / n as f64));
                }
                rows.push(row);
            }
            let headers: Vec<&str> = std::iter::once("n")
                .chain(selectors.iter().map(|s| s.name()))
                .collect();
            print_table(&format!("{regime} case, k = {k}"), &headers, &rows);
        }
    }

    // growth-shape check: the heap best case is ~O(n)
    let k = 128;
    let t1 = best_of(args.reps, || {
        std::hint::black_box(HeapSelect.select(&inputs(1 << 13, "best"), k));
    });
    let t2 = best_of(args.reps, || {
        std::hint::black_box(HeapSelect.select(&inputs(1 << 14, "best"), k));
    });
    let ratio = t2.as_secs_f64() / t1.as_secs_f64();
    println!(
        "\nheap best-case growth: 2x n -> {ratio:.2}x time (expect ~2 for the O(n) best case)"
    );
}
