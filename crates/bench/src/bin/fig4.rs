//! Figure 4 — predicted vs measured floating-point efficiency (GFLOPS)
//! as a function of the dimension `d`, for GSKNN Var#1, Var#6 and the
//! GEMM+heap reference, at k ∈ {16, 512, 2048}.
//!
//! Paper parameters: m = n = 8192, d up to 1024, p ∈ {1, 10}. Here the
//! measured curves are single-core (`p = 1`); the model is evaluated for
//! both the calibrated machine and the paper's Ivy Bridge constants so
//! the predicted shapes can be compared directly. Scaled default:
//! m = n = 2048, d ≤ 512 (`--full` for paper scale).

use bench::{best_of, gflops, print_table, HarnessArgs};
use dataset::{uniform, DistanceKind};
use gsknn_core::model::Approach;
use gsknn_core::{GemmParams, Gsknn, GsknnConfig, MachineParams, Model, ProblemSize, Variant};
use knn_ref::GemmKnn;

fn main() {
    let args = HarnessArgs::parse();
    let mn = if args.full { 8192 } else { 2048 };
    let dims: Vec<usize> = if args.full {
        vec![16, 32, 64, 128, 256, 384, 512, 768, 1024]
    } else {
        vec![16, 32, 64, 128, 256, 512]
    };
    let ks: &[usize] = &[16, 512, 2048];
    let model = Model::new(MachineParams::ivy_bridge_1core());

    println!("Figure 4 reproduction: GFLOPS vs d, m = n = {mn}, p = 1");
    println!(
        "model constants: paper Ivy Bridge (tau_f=8*3.54GHz, tau_b=2.2ns, tau_l=13.91ns, eps=0.5)"
    );

    for &k in ks {
        if k > mn {
            continue;
        }
        let mut rows = Vec::new();
        for &d in &dims {
            let x = uniform(2 * mn, d, 7);
            let q: Vec<usize> = (0..mn).collect();
            let r: Vec<usize> = (mn..2 * mn).collect();
            let p = ProblemSize { m: mn, n: mn, d, k };

            let measure_variant = |variant: Variant| {
                let mut exec = Gsknn::new(GsknnConfig {
                    variant,
                    ..Default::default()
                });
                best_of(args.reps, || {
                    let t = exec.run(&x, &q, &r, k, DistanceKind::SqL2);
                    std::hint::black_box(t.len());
                })
            };
            let t_v1 = measure_variant(Variant::Var1);
            let t_v6 = measure_variant(Variant::Var6);
            let mut exec_ref = GemmKnn::new(GemmParams::ivy_bridge(), false);
            let t_ref = best_of(args.reps, || {
                let (t, _) = exec_ref.run(&x, &q, &r, k);
                std::hint::black_box(t.len());
            });

            rows.push(vec![
                d.to_string(),
                format!("{:.2}", model.gflops(&p, Approach::Var1)),
                format!("{:.2}", gflops(mn, mn, d, t_v1)),
                format!("{:.2}", model.gflops(&p, Approach::Var6)),
                format!("{:.2}", gflops(mn, mn, d, t_v6)),
                format!("{:.2}", model.gflops(&p, Approach::Gemm)),
                format!("{:.2}", gflops(mn, mn, d, t_ref)),
            ]);
            bench::json_row(
                &args,
                &serde_json::json!({
                    "experiment": "fig4", "m": mn, "n": mn, "d": d, "k": k,
                    "model_var1": model.gflops(&p, Approach::Var1),
                    "meas_var1": gflops(mn, mn, d, t_v1),
                    "model_var6": model.gflops(&p, Approach::Var6),
                    "meas_var6": gflops(mn, mn, d, t_v6),
                    "model_gemm": model.gflops(&p, Approach::Gemm),
                    "meas_gemm": gflops(mn, mn, d, t_ref),
                }),
            );
        }
        print_table(
            &format!("k = {k} (GFLOPS)"),
            &[
                "d",
                "Var#1 model",
                "Var#1 meas",
                "Var#6 model",
                "Var#6 meas",
                "ref model",
                "ref meas",
            ],
            &rows,
        );
    }
}
