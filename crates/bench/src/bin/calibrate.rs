//! Calibrate the §2.6 performance-model constants on the running
//! machine:
//!
//! * `τf` — peak flops/s, from the AVX2 rank-dc micro-kernel on an
//!   L1-resident problem (the fastest code path we have);
//! * `τb` — seconds per contiguously-streamed f64, from a large sum
//!   reduction over a DRAM-resident array;
//! * `τl` — seconds per dependent random access, from a pointer chase
//!   over a DRAM-resident permutation;
//! * `ε` — left at the paper's 0.5 (expected heap-adjustment fraction).
//!
//! Prints a `MachineParams` literal to paste into harnesses that want
//! locally-calibrated model curves (the fig4/fig5 binaries default to the
//! paper's Ivy Bridge constants so their output is comparable to the
//! published figures).

use bench::HarnessArgs;
use dataset::{uniform, DistanceKind};
use gsknn_core::microkernel::{tile_pass, PassMode, MR, NR};
use gsknn_core::packing::{pack_q_panel, pack_r_panel};
use std::time::Instant;

fn measure_tau_f() -> f64 {
    // one hot tile, dcb = 256: 2*dcb*MR*NR flops per call, everything L1
    let d = 256;
    let x = uniform(MR + NR, d, 5);
    let q: Vec<usize> = (0..MR).collect();
    let r: Vec<usize> = (MR..MR + NR).collect();
    let mut ap = vec![0.0; MR * d];
    let mut bp = vec![0.0; NR * d];
    pack_q_panel(&x, &q, 0, MR, 0, d, &mut ap);
    pack_r_panel(&x, &r, 0, NR, 0, d, &mut bp);
    let q2 = vec![0.0; MR];
    let r2 = vec![0.0; NR];
    let mut out = [0.0; MR * NR];
    let calls = 200_000;
    let t0 = Instant::now();
    for _ in 0..calls {
        tile_pass(
            DistanceKind::SqL2,
            d,
            &ap,
            &bp,
            &q2,
            &r2,
            PassMode::Last {
                prior: None,
                out: &mut out,
            },
        );
        std::hint::black_box(&out);
    }
    let secs = t0.elapsed().as_secs_f64();
    (2.0 * d as f64 * (MR * NR) as f64 * calls as f64) / secs
}

fn measure_tau_b() -> f64 {
    // stream 256 MB (beyond any cache) and time the read bandwidth
    let n = 32_000_000usize;
    let data = vec![1.0f64; n];
    let t0 = Instant::now();
    let mut acc = 0.0;
    for chunk in data.chunks(4096) {
        acc += chunk.iter().sum::<f64>();
    }
    std::hint::black_box(acc);
    t0.elapsed().as_secs_f64() / n as f64
}

fn measure_tau_l() -> f64 {
    // dependent pointer chase over a random permutation (~128 MB)
    let n = 16_000_000usize;
    let mut next: Vec<u32> = (0..n as u32).collect();
    // deterministic Fisher-Yates
    let mut state = 0x9E3779B97F4A7C15u64;
    for i in (1..n).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let j = (state >> 33) as usize % (i + 1);
        next.swap(i, j);
    }
    let hops = 4_000_000usize;
    let mut at = 0u32;
    let t0 = Instant::now();
    for _ in 0..hops {
        at = next[at as usize];
    }
    std::hint::black_box(at);
    t0.elapsed().as_secs_f64() / hops as f64
}

fn main() {
    let _ = HarnessArgs::parse();
    println!("calibrating model constants on this machine...");
    let tau_f = measure_tau_f();
    println!(
        "tau_f = {:.2} GFLOPS (micro-kernel hot-loop peak)",
        tau_f / 1e9
    );
    let tau_b = measure_tau_b();
    println!(
        "tau_b = {:.3} ns/f64 ({:.2} GB/s contiguous)",
        tau_b * 1e9,
        8.0 / tau_b / 1e9
    );
    let tau_l = measure_tau_l();
    println!("tau_l = {:.2} ns/access (dependent random)", tau_l * 1e9);
    println!();
    println!("MachineParams {{");
    println!("    tau_f: {tau_f:.3e},");
    println!("    tau_b: {tau_b:.3e},");
    println!("    tau_l: {tau_l:.3e},");
    println!("    epsilon: 0.5,");
    println!("    cores: {},", num_cpus::get());
    println!("}}");
}
