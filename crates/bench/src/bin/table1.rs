//! Table 1 — the integrated experiment: randomized-KD-tree approximate
//! all-nearest-neighbors, GEMM-based leaf kernel ("ref") vs GSKNN,
//! end-to-end seconds.
//!
//! Paper parameters: 8 MPI nodes, N = 1,600,000 points from a
//! 10-dimensional Gaussian embedded in d ∈ {16, 64, 256, 1024},
//! m = 8192 points per leaf, k ∈ {16, 512, 2048}; >90% of time inside
//! the kernel. This reproduction is single-node: the default is scaled
//! to N = 100,000 with 2048-point leaves; `--full` runs N = 1,600,000 /
//! m = 8192 (needs ~13 GB at d = 1024 and hours of CPU).

use bench::{print_table, HarnessArgs};
use dataset::{gaussian_embedded, DistanceKind};
use gsknn_core::{GemmParams, GsknnConfig};
use knn_ref::GemmKnn;
use rkdt::{AllNnSolver, GemmLeaf, GsknnLeaf, RkdtConfig};
use std::time::Instant;

fn main() {
    let args = HarnessArgs::parse();
    let (n_points, leaf) = if args.full {
        (1_600_000, 8192)
    } else {
        (100_000, 2048)
    };
    let dims: &[usize] = if args.full {
        &[16, 64, 256, 1024]
    } else {
        &[16, 64]
    };
    let ks: &[usize] = if args.full {
        &[16, 512, 2048]
    } else {
        &[16, 512]
    };
    let iterations = 3;

    println!("Table 1 reproduction: rkdt all-NN, N = {n_points}, leaf m = {leaf}, {iterations} iterations");
    println!("dataset: 10-d Gaussian mixture embedded in d dimensions (paper §3)");

    for &k in ks {
        if k >= leaf {
            continue; // k must be below the leaf size for in-leaf search
        }
        let mut rows = Vec::new();
        for &d in dims {
            let x = gaussian_embedded(n_points, d, 8, 2026);
            let cfg = RkdtConfig {
                leaf_size: leaf,
                iterations,
                seed: 99,
                parallel_leaves: true,
                lpt_workers: None,
            };
            let solver = AllNnSolver::new(cfg);

            let t0 = Instant::now();
            let (_, ref_stats) = solver.solve(
                &x,
                k,
                || GemmLeaf::new(GemmKnn::new(GemmParams::ivy_bridge(), false)),
                None,
            );
            let t_ref = t0.elapsed().as_secs_f64();

            let t1 = Instant::now();
            let (_, gs_stats) = solver.solve(
                &x,
                k,
                || GsknnLeaf::new(GsknnConfig::default(), DistanceKind::SqL2),
                None,
            );
            let t_gsknn = t1.elapsed().as_secs_f64();

            let ref_kernel: f64 = ref_stats.iter().map(|s| s.kernel_seconds).sum();
            let gs_kernel: f64 = gs_stats.iter().map(|s| s.kernel_seconds).sum();

            rows.push(vec![
                d.to_string(),
                format!("{t_ref:.1}"),
                format!("{t_gsknn:.1}"),
                format!("{:.0}%", 100.0 * ref_kernel / t_ref),
                format!("{:.0}%", 100.0 * gs_kernel / t_gsknn),
                format!("{:.2}x", t_ref / t_gsknn),
            ]);
            bench::json_row(
                &args,
                &serde_json::json!({
                    "experiment": "table1", "N": n_points, "leaf": leaf, "d": d, "k": k,
                    "ref_seconds": t_ref, "gsknn_seconds": t_gsknn,
                    "ref_kernel_fraction": ref_kernel / t_ref,
                    "gsknn_kernel_fraction": gs_kernel / t_gsknn,
                }),
            );
        }
        print_table(
            &format!("k = {k} (seconds, end-to-end)"),
            &[
                "d",
                "ref",
                "GSKNN",
                "ref kernel%",
                "GSKNN kernel%",
                "speedup",
            ],
            &rows,
        );
    }
}
