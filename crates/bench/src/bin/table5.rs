//! Table 5 — runtime breakdown analysis (ms).
//!
//! For each `(d, k)` cell the paper reports the reference decomposition's
//! phase times `Tcoll + Tgemm + Tsq2d + Theap` next to GSKNN's total,
//! with GSKNN's heap time estimated as the total-time difference against
//! a `k = 1` run (a timer inside the 2nd loop would perturb the kernel).
//!
//! Paper parameters: m = n = 8192, d ∈ {16, 64, 256, 1024},
//! k ∈ {16, 128, 512, 2048}. Scaled default: m = n = 2048 and
//! d ≤ 256 (pass `--full` for paper scale).

use bench::{best_of, ms, print_table, HarnessArgs};
use dataset::{uniform, DistanceKind};
use gsknn_core::{GemmParams, Gsknn, GsknnConfig};
use knn_ref::GemmKnn;

fn main() {
    let args = HarnessArgs::parse();
    let mn = if args.full { 8192 } else { 2048 };
    let dims: &[usize] = if args.full {
        &[16, 64, 256, 1024]
    } else {
        &[16, 64, 256]
    };
    let ks: &[usize] = &[16, 128, 512, 2048];

    println!("Table 5 reproduction: runtime breakdown (ms), m = n = {mn}");
    println!("reference = blocked GEMM + binary-heap selection (Algorithm 2.1)");
    println!("GSKNN     = fused kernel, Var#1 for k<=512 / Var#6 for k=2048");

    for &d in dims {
        let x = uniform(2 * mn, d, 42);
        let q: Vec<usize> = (0..mn).collect();
        let r: Vec<usize> = (mn..2 * mn).collect();

        // GSKNN k = 1 total: the baseline for the paper's Theap estimate
        let gsknn_time = |k: usize| {
            let mut exec = Gsknn::new(GsknnConfig::default());
            best_of(args.reps, || {
                let t = exec.run(&x, &q, &r, k, DistanceKind::SqL2);
                std::hint::black_box(t.len());
            })
        };
        let t_k1 = gsknn_time(1);

        let mut rows = Vec::new();
        for &k in ks {
            if k > r.len() {
                continue;
            }
            // reference phases
            let mut phases = knn_ref::PhaseTimes::default();
            let mut exec_ref = GemmKnn::new(GemmParams::ivy_bridge(), false);
            let t_ref = best_of(args.reps, || {
                let (table, times) = exec_ref.run(&x, &q, &r, k);
                std::hint::black_box(table.len());
                phases = times;
            });
            // GSKNN total + estimated heap time
            let t_gsknn = gsknn_time(k);
            let heap_est = t_gsknn.saturating_sub(t_k1);

            rows.push(vec![
                k.to_string(),
                format!("{:.0}", ms(phases.t_coll)),
                format!("{:.0}", ms(phases.t_gemm)),
                format!("{:.0}", ms(phases.t_sq2d)),
                format!("{:.0}", ms(phases.t_heap)),
                format!("{:.0}", ms(t_ref)),
                format!("{:.0}", ms(t_gsknn)),
                format!("{:.0}", ms(heap_est)),
                format!("{:.2}x", t_ref.as_secs_f64() / t_gsknn.as_secs_f64()),
            ]);
            bench::json_row(
                &args,
                &serde_json::json!({
                    "experiment": "table5", "m": mn, "n": mn, "d": d, "k": k,
                    "ref_coll_ms": ms(phases.t_coll), "ref_gemm_ms": ms(phases.t_gemm),
                    "ref_sq2d_ms": ms(phases.t_sq2d), "ref_heap_ms": ms(phases.t_heap),
                    "ref_total_ms": ms(t_ref), "gsknn_total_ms": ms(t_gsknn),
                    "gsknn_heap_est_ms": ms(heap_est),
                }),
            );
        }
        print_table(
            &format!("m = n = {mn}, d = {d}"),
            &[
                "k",
                "ref:Tcoll",
                "ref:Tgemm",
                "ref:Tsq2d",
                "ref:Theap",
                "ref:total",
                "GSKNN:total",
                "GSKNN:Theap~",
                "speedup",
            ],
            &rows,
        );
    }
}
