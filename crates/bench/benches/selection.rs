//! Criterion: the Table 3 selection algorithms side by side on the
//! average-case (random) input.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use knn_select::{
    FourHeapSelect, HeapSelect, MergeSelect, Neighbor, QuickSelect, SelectK, SortSelect,
};

fn candidates(n: usize) -> Vec<Neighbor> {
    let mut state = 0xABCDEFu64;
    (0..n)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            Neighbor::new((state >> 11) as f64 / (1u64 << 53) as f64, i as u32)
        })
        .collect()
}

fn bench_selectors(c: &mut Criterion) {
    let cands = candidates(1 << 14);
    let selectors: Vec<Box<dyn SelectK>> = vec![
        Box::new(HeapSelect),
        Box::new(FourHeapSelect),
        Box::new(QuickSelect),
        Box::new(MergeSelect),
        Box::new(SortSelect),
    ];
    let mut group = c.benchmark_group("selection/avg-case");
    group.throughput(Throughput::Elements(cands.len() as u64));
    for k in [16usize, 512] {
        for s in &selectors {
            group.bench_function(BenchmarkId::new(s.name(), k), |b| {
                b.iter(|| std::hint::black_box(s.select(&cands, k)));
            });
        }
    }
    group.finish();
}

fn bench_list_update(c: &mut Criterion) {
    // the paper's point about quickselect: O(n + k) per *update* of an
    // existing list is bad when n is small — measure update cost at
    // small n
    let k = 128;
    let list: Vec<Neighbor> = {
        let mut v = candidates(k);
        v.sort_unstable_by(Neighbor::cmp_dist_idx);
        v
    };
    let fresh = candidates(256);
    let selectors: Vec<Box<dyn SelectK>> = vec![
        Box::new(HeapSelect),
        Box::new(QuickSelect),
        Box::new(MergeSelect),
    ];
    let mut group = c.benchmark_group("selection/list-update-small-n");
    for s in &selectors {
        group.bench_function(s.name(), |b| {
            b.iter(|| std::hint::black_box(s.update(&list, &fresh, k)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_selectors, bench_list_update
}
criterion_main!(benches);
