//! Criterion: the end-to-end kNN kernel — GSKNN variants vs the GEMM
//! reference vs the single-loop baseline, plus the fused-vs-unfused
//! ablation at low d where the fusion matters most.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dataset::{uniform, DistanceKind};
use gsknn_core::{GemmParams, Gsknn, GsknnConfig, Variant};
use knn_ref::{single_loop_knn, GemmKnn};

fn bench_kernel_low_d(c: &mut Criterion) {
    // d = 16, k = 16: GSKNN's sweet spot (memory-bound for GEMM)
    let (m, n, d, k) = (512usize, 512usize, 16usize, 16usize);
    let x = uniform(m + n, d, 3);
    let q: Vec<usize> = (0..m).collect();
    let r: Vec<usize> = (m..m + n).collect();

    let mut group = c.benchmark_group("kernel/low-d");
    group.throughput(Throughput::Elements((m * n) as u64));
    for variant in [Variant::Var1, Variant::Var3, Variant::Var6] {
        group.bench_function(BenchmarkId::new("gsknn", variant.name()), |b| {
            let mut exec = Gsknn::new(GsknnConfig {
                variant,
                ..Default::default()
            });
            b.iter(|| {
                std::hint::black_box(exec.run(&x, &q, &r, k, DistanceKind::SqL2).len());
            });
        });
    }
    group.bench_function("gemm-ref", |b| {
        let mut exec = GemmKnn::new(GemmParams::ivy_bridge(), false);
        b.iter(|| {
            let (t, _) = exec.run(&x, &q, &r, k);
            std::hint::black_box(t.len());
        });
    });
    group.bench_function("single-loop", |b| {
        b.iter(|| {
            std::hint::black_box(single_loop_knn(&x, &q, &r, k, DistanceKind::SqL2, false).len());
        });
    });
    group.finish();
}

fn bench_kernel_high_d(c: &mut Criterion) {
    // d = 512: GEMM amortizes; the gap should close (Figure 4's right edge)
    let (m, n, d, k) = (256usize, 256usize, 512usize, 16usize);
    let x = uniform(m + n, d, 9);
    let q: Vec<usize> = (0..m).collect();
    let r: Vec<usize> = (m..m + n).collect();

    let mut group = c.benchmark_group("kernel/high-d");
    group.throughput(Throughput::Elements((m * n) as u64));
    group.bench_function("gsknn-var1", |b| {
        let mut exec = Gsknn::new(GsknnConfig {
            variant: Variant::Var1,
            ..Default::default()
        });
        b.iter(|| {
            std::hint::black_box(exec.run(&x, &q, &r, k, DistanceKind::SqL2).len());
        });
    });
    group.bench_function("gemm-ref", |b| {
        let mut exec = GemmKnn::new(GemmParams::ivy_bridge(), false);
        b.iter(|| {
            let (t, _) = exec.run(&x, &q, &r, k);
            std::hint::black_box(t.len());
        });
    });
    group.finish();
}

fn bench_norms_end_to_end(c: &mut Criterion) {
    let (m, n, d, k) = (256usize, 256usize, 64usize, 8usize);
    let x = uniform(m + n, d, 13);
    let q: Vec<usize> = (0..m).collect();
    let r: Vec<usize> = (m..m + n).collect();
    let mut group = c.benchmark_group("kernel/norms");
    group.throughput(Throughput::Elements((m * n) as u64));
    for kind in [DistanceKind::SqL2, DistanceKind::L1, DistanceKind::LInf] {
        group.bench_function(kind.name(), |b| {
            let mut exec = Gsknn::new(GsknnConfig::default());
            b.iter(|| {
                std::hint::black_box(exec.run(&x, &q, &r, k, kind).len());
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernel_low_d, bench_kernel_high_d, bench_norms_end_to_end
}
criterion_main!(benches);
