//! Criterion: the blocked GEMM substrate against the naive triple loop —
//! the sanity check that the baseline the paper calls "highly optimized"
//! is actually optimized here too.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gemm_kernel::{gemm_tn, gemm_tn_naive, GemmParams, GemmWorkspace};

fn rand_vec(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect()
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm/tn");
    for &(m, n, d) in &[(256usize, 256usize, 64usize), (512, 512, 256)] {
        let a = rand_vec(d * m, 1);
        let b = rand_vec(d * n, 2);
        group.throughput(Throughput::Elements((2 * m * n * d) as u64));
        group.bench_function(BenchmarkId::new("blocked", format!("{m}x{n}x{d}")), |bch| {
            let mut cbuf = vec![0.0; m * n];
            let mut ws = GemmWorkspace::new();
            let params = GemmParams::ivy_bridge();
            bch.iter(|| {
                gemm_tn(-2.0, &a, &b, 0.0, &mut cbuf, d, m, n, &params, &mut ws);
                std::hint::black_box(&cbuf);
            });
        });
        if m <= 256 {
            group.bench_function(BenchmarkId::new("naive", format!("{m}x{n}x{d}")), |bch| {
                let mut cbuf = vec![0.0; m * n];
                bch.iter(|| {
                    gemm_tn_naive(-2.0, &a, &b, 0.0, &mut cbuf, d, m, n);
                    std::hint::black_box(&cbuf);
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gemm
}
criterion_main!(benches);
