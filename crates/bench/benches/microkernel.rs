//! Criterion: the fused micro-kernel (Figure 3's realization) — rank-dc
//! update + distance epilogue per norm, against the plain GEMM
//! micro-kernel, plus the Partial (Cc-spill) pass mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dataset::{uniform, DistanceKind};
use gemm_kernel::AlignedBuf;
use gsknn_core::microkernel::{tile_pass, PassMode, MR, NR};
use gsknn_core::packing::{pack_q_panel, pack_r_panel};

fn panels(d: usize) -> (AlignedBuf, AlignedBuf, Vec<f64>, Vec<f64>) {
    let x = uniform(MR + NR, d, 5);
    let q: Vec<usize> = (0..MR).collect();
    let r: Vec<usize> = (MR..MR + NR).collect();
    let mut ap = AlignedBuf::zeroed(MR * d);
    let mut bp = AlignedBuf::zeroed(NR * d);
    pack_q_panel(&x, &q, 0, MR, 0, d, ap.as_mut_slice());
    pack_r_panel(&x, &r, 0, NR, 0, d, bp.as_mut_slice());
    let q2: Vec<f64> = q.iter().map(|&i| x.sqnorm(i)).collect();
    let r2: Vec<f64> = r.iter().map(|&j| x.sqnorm(j)).collect();
    (ap, bp, q2, r2)
}

fn bench_norms(c: &mut Criterion) {
    let d = 256;
    let (ap, bp, q2, r2) = panels(d);
    let mut group = c.benchmark_group("microkernel/tile");
    group.throughput(Throughput::Elements((2 * d * MR * NR) as u64));
    for kind in [
        DistanceKind::SqL2,
        DistanceKind::L1,
        DistanceKind::LInf,
        DistanceKind::Lp(3.0),
    ] {
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            let mut out = [0.0; MR * NR];
            b.iter(|| {
                tile_pass(
                    kind,
                    d,
                    ap.as_slice(),
                    bp.as_slice(),
                    &q2,
                    &r2,
                    PassMode::Last {
                        prior: None,
                        out: &mut out,
                    },
                );
                std::hint::black_box(&out);
            });
        });
    }
    group.finish();
}

fn bench_partial_vs_last(c: &mut Criterion) {
    let d = 256;
    let (ap, bp, q2, r2) = panels(d);
    let mut group = c.benchmark_group("microkernel/pass-mode");
    group.bench_function("last-no-prior", |b| {
        let mut out = [0.0; MR * NR];
        b.iter(|| {
            tile_pass(
                DistanceKind::SqL2,
                d,
                ap.as_slice(),
                bp.as_slice(),
                &q2,
                &r2,
                PassMode::Last {
                    prior: None,
                    out: &mut out,
                },
            );
            std::hint::black_box(&out);
        });
    });
    group.bench_function("partial-then-last", |b| {
        let mut cc = vec![0.0; MR * NR];
        let mut out = [0.0; MR * NR];
        b.iter(|| {
            tile_pass(
                DistanceKind::SqL2,
                d / 2,
                ap.as_slice(),
                bp.as_slice(),
                &q2,
                &r2,
                PassMode::Partial {
                    cc: &mut cc,
                    ldcc: NR,
                    first: true,
                },
            );
            tile_pass(
                DistanceKind::SqL2,
                d / 2,
                &ap.as_slice()[d / 2 * MR..],
                &bp.as_slice()[d / 2 * NR..],
                &q2,
                &r2,
                PassMode::Last {
                    prior: Some((&cc, NR)),
                    out: &mut out,
                },
            );
            std::hint::black_box(&out);
        });
    });
    group.finish();
}

fn bench_gemm_microkernel(c: &mut Criterion) {
    let d = 256;
    let (ap, bp, _, _) = panels(d);
    let kernel = gemm_kernel::microkernel_dispatch();
    c.bench_function("microkernel/gemm-rank-dc", |b| {
        let mut ctile = vec![0.0; MR * NR];
        b.iter(|| {
            // SAFETY: panels sized d*MR / d*NR; ctile is a full tile.
            unsafe {
                kernel(
                    d,
                    -2.0,
                    ap.as_slice().as_ptr(),
                    bp.as_slice().as_ptr(),
                    ctile.as_mut_ptr(),
                    NR,
                )
            };
            std::hint::black_box(&ctile);
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_norms, bench_partial_vs_last, bench_gemm_microkernel
}
criterion_main!(benches);
