//! Criterion: gather-packing straight from `X` (GSKNN, §2.3) versus the
//! GEMM approach's collect-then-pack — the memory-traffic saving the
//! model's Eq. (5) charges the baseline for, measured in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dataset::uniform;
use gemm_kernel::{pack_a_panel, AlignedBuf, MR};
use gsknn_core::packing::pack_q_panel;

fn bench_gather_vs_collect(c: &mut Criterion) {
    let d = 128;
    let x = uniform(8192, d, 3);
    // shuffled ids: the general-stride case the kernel is named for
    let mut idx: Vec<usize> = (0..2048).map(|i| (i * 2654435761) % 8192).collect();
    idx.sort_unstable();
    idx.dedup();
    let mcb = idx.len() / MR * MR;
    let idx = &idx[..mcb];

    let mut group = c.benchmark_group("packing/query-panel");
    group.throughput(Throughput::Elements((mcb * d) as u64));
    group.bench_function(BenchmarkId::new("gather-pack", mcb), |b| {
        let mut out = AlignedBuf::zeroed(mcb * d);
        b.iter(|| {
            pack_q_panel(&x, idx, 0, mcb, 0, d, out.as_mut_slice());
            std::hint::black_box(out.as_slice().as_ptr());
        });
    });
    group.bench_function(BenchmarkId::new("collect-then-pack", mcb), |b| {
        let mut out = AlignedBuf::zeroed(mcb * d);
        b.iter(|| {
            // the GEMM approach's explicit collection phase...
            let dense = x.gather(idx);
            // ...followed by the pack GEMM does anyway
            pack_a_panel(&dense, d, 0, mcb, 0, d, out.as_mut_slice());
            std::hint::black_box(out.as_slice().as_ptr());
        });
    });
    group.finish();
}

fn bench_contiguous_vs_strided_ids(c: &mut Criterion) {
    // gather cost sensitivity to index locality
    let d = 64;
    let x = uniform(1 << 16, d, 5);
    let mcb = 1024;
    let contiguous: Vec<usize> = (0..mcb).collect();
    let strided: Vec<usize> = (0..mcb).map(|i| i * 61).collect();
    let mut group = c.benchmark_group("packing/index-locality");
    group.throughput(Throughput::Elements((mcb * d) as u64));
    for (name, idx) in [("contiguous", &contiguous), ("strided-61", &strided)] {
        group.bench_function(name, |b| {
            let mut out = AlignedBuf::zeroed(mcb * d);
            b.iter(|| {
                pack_q_panel(&x, idx, 0, mcb, 0, d, out.as_mut_slice());
                std::hint::black_box(out.as_slice().as_ptr());
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_gather_vs_collect, bench_contiguous_vs_strided_ids
}
criterion_main!(benches);
