//! Criterion: binary heap vs padded 4-heap (the §2.4 ablation — the
//! paper measures the 4-heap 30–50% faster for k = 2048), plus the cost
//! of id-unique insertion and the SIMD max-child search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use knn_select::{BinaryMaxHeap, FourHeap, Neighbor};

fn candidates(n: usize) -> Vec<Neighbor> {
    let mut state = 0xDEADBEEFu64;
    (0..n)
        .map(|i| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            Neighbor::new((state >> 11) as f64 / (1u64 << 53) as f64, i as u32)
        })
        .collect()
}

fn bench_heap_kinds(c: &mut Criterion) {
    let cands = candidates(1 << 14);
    let mut group = c.benchmark_group("heaps/select");
    group.throughput(Throughput::Elements(cands.len() as u64));
    for k in [16usize, 128, 512, 2048] {
        group.bench_function(BenchmarkId::new("binary", k), |b| {
            b.iter(|| {
                let mut h = BinaryMaxHeap::new(k);
                for &c in &cands {
                    h.push(c);
                }
                std::hint::black_box(h.threshold());
            });
        });
        group.bench_function(BenchmarkId::new("4-heap", k), |b| {
            b.iter(|| {
                let mut h = FourHeap::new(k);
                for &c in &cands {
                    h.push(c);
                }
                std::hint::black_box(h.threshold());
            });
        });
    }
    group.finish();
}

fn bench_push_unique_overhead(c: &mut Criterion) {
    let cands = candidates(1 << 13);
    let k = 128;
    let mut group = c.benchmark_group("heaps/push-unique");
    group.throughput(Throughput::Elements(cands.len() as u64));
    group.bench_function("plain", |b| {
        b.iter(|| {
            let mut h = BinaryMaxHeap::new(k);
            for &c in &cands {
                h.push(c);
            }
            std::hint::black_box(h.len());
        });
    });
    group.bench_function("unique", |b| {
        b.iter(|| {
            let mut h = BinaryMaxHeap::new(k);
            for &c in &cands {
                h.push_unique(c);
            }
            std::hint::black_box(h.len());
        });
    });
    group.finish();
}

fn bench_max_child(c: &mut Criterion) {
    let mut h = FourHeap::new(4096);
    for c in candidates(4096) {
        h.push(c);
    }
    let mut group = c.benchmark_group("heaps/max-child");
    group.bench_function("simd-dispatch", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for j in 0..512 {
                acc ^= h.max_child_simd(j);
            }
            std::hint::black_box(acc);
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_heap_kinds, bench_push_unique_overhead, bench_max_child
}
criterion_main!(benches);
