//! Randomized space partition: a random-projection KD-tree. At every
//! internal node the point set is split at the median of its projections
//! onto a random unit direction (the randomized-KD-tree family of
//! Dasgupta & Freund / Jones et al., refs [6, 16] of the paper); leaves
//! hold at most `leaf_size` points. Only the leaf partition is needed by
//! the all-NN solver, but the tree structure is kept for inspection and
//! for query routing.

use dataset::PointSet;
use gsknn_core::GsknnScalar;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One node of the random-projection tree.
#[derive(Debug)]
pub enum RpNode {
    /// Internal split: a direction, the median threshold, two children.
    Split {
        /// Random unit direction (length `d`).
        direction: Vec<f64>,
        /// Median of the projections.
        threshold: f64,
        /// `proj <= threshold` side.
        left: Box<RpNode>,
        /// `proj > threshold` side.
        right: Box<RpNode>,
    },
    /// Leaf: indices into the point set.
    Leaf(Vec<usize>),
}

/// A random-projection tree over a subset of a [`PointSet`].
#[derive(Debug)]
pub struct RpTree {
    root: RpNode,
    leaf_size: usize,
}

impl RpTree {
    /// Build over all points of `x` with the given RNG seed. Splits stop
    /// when a node holds ≤ `leaf_size` points (`leaf_size ≥ 1`). Generic
    /// over the element type: projections are accumulated in `f64` either
    /// way, so f32 and f64 data share the tree machinery (and an f32 cast
    /// of an f64 set yields near-identical partitions).
    pub fn build<T: GsknnScalar>(x: &PointSet<T>, leaf_size: usize, seed: u64) -> Self {
        assert!(leaf_size >= 1, "leaf_size must be positive");
        let ids: Vec<usize> = (0..x.len()).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        RpTree {
            root: build_node(x, ids, leaf_size, &mut rng),
            leaf_size,
        }
    }

    /// The configured maximum leaf size.
    pub fn leaf_size(&self) -> usize {
        self.leaf_size
    }

    /// All leaves, left to right. The union is a partition of `0..N`.
    pub fn leaves(&self) -> Vec<&[usize]> {
        let mut out = Vec::new();
        collect_leaves(&self.root, &mut out);
        out
    }

    /// Route a point (by coordinates) to its leaf.
    pub fn route<T: GsknnScalar>(&self, point: &[T]) -> &[usize] {
        let mut node = &self.root;
        loop {
            match node {
                RpNode::Leaf(ids) => return ids,
                RpNode::Split {
                    direction,
                    threshold,
                    left,
                    right,
                } => {
                    let proj: f64 = direction
                        .iter()
                        .zip(point)
                        .map(|(a, b)| a * b.to_f64())
                        .sum();
                    node = if proj <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Maximum depth (leaf = 0).
    pub fn depth(&self) -> usize {
        fn depth(node: &RpNode) -> usize {
            match node {
                RpNode::Leaf(_) => 0,
                RpNode::Split { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        depth(&self.root)
    }
}

fn collect_leaves<'a>(node: &'a RpNode, out: &mut Vec<&'a [usize]>) {
    match node {
        RpNode::Leaf(ids) => out.push(ids),
        RpNode::Split { left, right, .. } => {
            collect_leaves(left, out);
            collect_leaves(right, out);
        }
    }
}

fn build_node<T: GsknnScalar>(
    x: &PointSet<T>,
    ids: Vec<usize>,
    leaf_size: usize,
    rng: &mut SmallRng,
) -> RpNode {
    if ids.len() <= leaf_size {
        return RpNode::Leaf(ids);
    }
    let direction = random_unit(x.dim(), rng);
    let mut projected: Vec<(f64, usize)> = ids
        .iter()
        .map(|&i| {
            let p = x.point(i);
            let proj: f64 = direction.iter().zip(p).map(|(a, b)| a * b.to_f64()).sum();
            (proj, i)
        })
        .collect();
    // median split (ties keep the partition balanced by index order)
    let mid = projected.len() / 2;
    projected.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).expect("finite projections"));
    let threshold = projected[mid].0;
    let (l, r) = projected.split_at(mid);
    let left_ids: Vec<usize> = l.iter().map(|&(_, i)| i).collect();
    let right_ids: Vec<usize> = r.iter().map(|&(_, i)| i).collect();
    // len > leaf_size ≥ 1 ⇒ len ≥ 2 ⇒ 1 ≤ mid < len: both sides
    // non-empty even when every projection ties, so recursion terminates.
    debug_assert!(!left_ids.is_empty() && !right_ids.is_empty());
    RpNode::Split {
        direction,
        threshold,
        left: Box::new(build_node(x, left_ids, leaf_size, rng)),
        right: Box::new(build_node(x, right_ids, leaf_size, rng)),
    }
}

fn random_unit(d: usize, rng: &mut SmallRng) -> Vec<f64> {
    loop {
        // Gaussian-ish direction from sums of uniforms (CLT is plenty for
        // a random split direction), normalized.
        let v: Vec<f64> = (0..d)
            .map(|_| {
                let s: f64 = (0..4).map(|_| rng.gen::<f64>() - 0.5).sum();
                s
            })
            .collect();
        let norm = v.iter().map(|a| a * a).sum::<f64>().sqrt();
        if norm > 1e-12 {
            return v.into_iter().map(|a| a / norm).collect();
        }
    }
}

/// Convenience: just the leaf partition (owned), one `Vec<usize>` per
/// leaf. Union = `0..N`, pairwise disjoint.
pub fn build_leaf_partition<T: GsknnScalar>(
    x: &PointSet<T>,
    leaf_size: usize,
    seed: u64,
) -> Vec<Vec<usize>> {
    RpTree::build(x, leaf_size, seed)
        .leaves()
        .into_iter()
        .map(|l| l.to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::uniform;

    #[test]
    fn leaves_partition_the_point_set() {
        let x = uniform(137, 6, 5);
        let tree = RpTree::build(&x, 16, 42);
        let mut all: Vec<usize> = tree.leaves().into_iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..137).collect::<Vec<_>>());
    }

    #[test]
    fn leaf_sizes_respect_bound_and_balance() {
        let x = uniform(256, 4, 9);
        let tree = RpTree::build(&x, 32, 1);
        for leaf in tree.leaves() {
            assert!(leaf.len() <= 32);
            // median splits keep leaves at least half full
            assert!(leaf.len() >= 16, "undersized leaf: {}", leaf.len());
        }
    }

    #[test]
    fn single_leaf_when_leaf_size_exceeds_n() {
        let x = uniform(10, 3, 2);
        let tree = RpTree::build(&x, 100, 3);
        assert_eq!(tree.leaves().len(), 1);
        assert_eq!(tree.depth(), 0);
    }

    #[test]
    fn different_seeds_give_different_partitions() {
        let x = uniform(200, 8, 7);
        let a = build_leaf_partition(&x, 25, 1);
        let b = build_leaf_partition(&x, 25, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn route_lands_in_own_leaf() {
        let x = uniform(120, 5, 11);
        let tree = RpTree::build(&x, 20, 13);
        for i in (0..120).step_by(17) {
            let leaf = tree.route(x.point(i));
            assert!(leaf.contains(&i), "point {i} not in its routed leaf");
        }
    }

    #[test]
    fn f32_build_partitions_and_routes() {
        let x = uniform(90, 5, 19);
        let x32 = x.cast::<f32>();
        let tree = RpTree::build(&x32, 16, 4);
        let mut all: Vec<usize> = tree.leaves().into_iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..90).collect::<Vec<_>>());
        // routing an f32 point lands in some leaf of the partition (the
        // pivot point itself may legitimately route to the sibling side)
        for i in (0..90).step_by(13) {
            let leaf = tree.route(x32.point(i));
            assert!(!leaf.is_empty());
            assert!(tree.leaves().iter().any(|l| l.as_ptr() == leaf.as_ptr()));
        }
    }

    #[test]
    fn duplicate_points_terminate() {
        // all-identical points make every projection equal: the
        // degenerate-split fallback must produce a single leaf
        let x = dataset::PointSet::from_vec(2, 50, vec![0.5; 100]);
        let tree = RpTree::build(&x, 4, 21);
        let total: usize = tree.leaves().iter().map(|l| l.len()).sum();
        assert_eq!(total, 50);
    }
}
