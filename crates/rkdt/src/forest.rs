//! Forest queries: k nearest neighbors of *out-of-sample* points.
//!
//! The all-NN solver handles the paper's setting (queries ⊂ X); a forest
//! additionally answers the classic train/test form — route each query
//! point down every tree to a leaf of reference candidates, then solve
//! one cross-table kNN kernel per (tree, leaf) group of queries. More
//! trees ⇒ more candidate leaves per query ⇒ higher recall, the standard
//! randomized-KD-tree trade-off (refs [6, 16] of the paper).

use crate::tree::RpTree;
use dataset::{DistanceKind, PointSet};
use gsknn_core::{FusedScalar, Gsknn, GsknnConfig};
use knn_select::NeighborTable;
use std::collections::HashMap;

/// A forest of random-projection trees over one reference set.
///
/// The forest itself is precision-free (splits are stored as `f64`
/// projections either way); `build` and `query` are generic over the
/// element type, so one forest built from an f64 table can also route
/// the f32 cast of the same data — which is how the serving layer offers
/// both precisions over a single index.
///
/// ```
/// use rkdt::Forest;
/// use gsknn_core::GsknnConfig;
/// use dataset::DistanceKind;
/// let refs = dataset::uniform(500, 8, 1);
/// let queries = dataset::uniform(10, 8, 2);
/// let forest = Forest::build(&refs, 4, 64, 7);
/// let t = forest.query(&refs, &queries, 3, DistanceKind::SqL2, GsknnConfig::default());
/// assert_eq!(t.len(), 10);
/// assert!(t.row(0).windows(2).all(|w| !w[1].beats(&w[0]))); // sorted rows
/// ```
pub struct Forest {
    trees: Vec<RpTree>,
}

impl Forest {
    /// Build `n_trees` trees over `x` with leaves of ≤ `leaf_size`.
    pub fn build<T: FusedScalar>(
        x: &PointSet<T>,
        n_trees: usize,
        leaf_size: usize,
        seed: u64,
    ) -> Self {
        assert!(n_trees >= 1, "need at least one tree");
        Forest {
            trees: (0..n_trees)
                .map(|t| RpTree::build(x, leaf_size, seed + t as u64))
                .collect(),
        }
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// `true` if the forest holds no trees (never, post-build).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Approximate k nearest references (ids into `x`) for every point of
    /// `queries` (a separate table of equal dimension). Row `i` of the
    /// result corresponds to `queries.point(i)`. Each (tree, leaf) group
    /// of queries is solved by one cross-table kernel call
    /// ([`Gsknn::run_cross`] / [`Gsknn::update_cross`]).
    pub fn query<T: FusedScalar>(
        &self,
        x: &PointSet<T>,
        queries: &PointSet<T>,
        k: usize,
        kind: DistanceKind,
        cfg: GsknnConfig,
    ) -> NeighborTable<T> {
        let mut exec = Gsknn::new(cfg);
        self.query_with(&mut exec, x, queries, k, kind)
    }

    /// Like [`Forest::query`], but reusing a caller-owned executor so its
    /// packing workspace persists across calls — the form long-lived
    /// servers use (one executor per worker thread, rebuilt from scratch
    /// if a batch panics and may have left the workspace poisoned).
    pub fn query_with<T: FusedScalar>(
        &self,
        exec: &mut Gsknn<T>,
        x: &PointSet<T>,
        queries: &PointSet<T>,
        k: usize,
        kind: DistanceKind,
    ) -> NeighborTable<T> {
        assert_eq!(x.dim(), queries.dim(), "dimension mismatch");
        let mut table = NeighborTable::new(queries.len(), k);

        for tree in &self.trees {
            let leaves = tree.leaves();
            // group queries by the leaf they route to (keyed by the
            // leaf's position in the left-to-right ordering)
            let leaf_pos: HashMap<*const usize, usize> = leaves
                .iter()
                .enumerate()
                .map(|(i, l)| (l.as_ptr(), i))
                .collect();
            let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
            for qi in 0..queries.len() {
                let leaf = tree.route(queries.point(qi));
                groups.entry(leaf_pos[&leaf.as_ptr()]).or_default().push(qi);
            }
            // deterministic processing order
            let mut ordered: Vec<(usize, Vec<usize>)> = groups.into_iter().collect();
            ordered.sort_unstable_by_key(|(l, _)| *l);

            for (leaf_idx, qs) in ordered {
                let mut local = NeighborTable::new(qs.len(), k);
                for (row, &qi) in qs.iter().enumerate() {
                    local.set_row(row, table.row(qi));
                }
                exec.update_cross(queries, &qs, x, leaves[leaf_idx], kind, &mut local);
                for (row, &qi) in qs.iter().enumerate() {
                    table.set_row(qi, local.row(row));
                }
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{gaussian_embedded, uniform};
    use knn_ref::oracle;

    /// Exact cross-table truth by brute force over a merged table.
    fn cross_truth(
        x: &PointSet,
        queries: &PointSet,
        k: usize,
        kind: DistanceKind,
    ) -> NeighborTable {
        let mut merged = queries.as_slice().to_vec();
        merged.extend_from_slice(x.as_slice());
        let xm = PointSet::from_vec(x.dim(), queries.len() + x.len(), merged);
        let q: Vec<usize> = (0..queries.len()).collect();
        let r: Vec<usize> = (queries.len()..queries.len() + x.len()).collect();
        let t = oracle::exact(&xm, &q, &r, k, kind);
        // shift reference ids back to x's index space
        let mut out = NeighborTable::new(queries.len(), k);
        for i in 0..queries.len() {
            let row: Vec<knn_select::Neighbor> = t
                .row(i)
                .iter()
                .filter(|nb| nb.idx != u32::MAX)
                .map(|nb| knn_select::Neighbor::new(nb.dist, nb.idx - queries.len() as u32))
                .collect();
            out.set_row(i, &row);
        }
        out
    }

    #[test]
    fn single_tree_big_leaf_is_exact() {
        let x = uniform(100, 6, 1);
        let queries = uniform(15, 6, 2);
        let forest = Forest::build(&x, 1, 100, 7);
        let got = forest.query(&x, &queries, 4, DistanceKind::SqL2, GsknnConfig::default());
        let want = cross_truth(&x, &queries, 4, DistanceKind::SqL2);
        for i in 0..15 {
            let gi: Vec<u32> = got.row(i).iter().map(|nb| nb.idx).collect();
            let wi: Vec<u32> = want.row(i).iter().map(|nb| nb.idx).collect();
            assert_eq!(gi, wi, "row {i}");
        }
    }

    #[test]
    fn recall_improves_with_more_trees() {
        let x = gaussian_embedded(800, 16, 5, 3);
        let queries = gaussian_embedded(60, 16, 5, 3); // same distribution
        let want = cross_truth(&x, &queries, 5, DistanceKind::SqL2);
        let recall = |n_trees: usize| {
            let forest = Forest::build(&x, n_trees, 64, 11);
            let got = forest.query(&x, &queries, 5, DistanceKind::SqL2, GsknnConfig::default());
            got.recall_against(&want)
        };
        let r1 = recall(1);
        let r8 = recall(8);
        assert!(r8 > r1, "more trees must help: {r1} vs {r8}");
        assert!(r8 > 0.6, "8-tree recall too low: {r8}");
    }

    #[test]
    fn queries_route_deterministically() {
        let x = uniform(200, 5, 9);
        let queries = uniform(20, 5, 10);
        let forest = Forest::build(&x, 3, 32, 13);
        let a = forest.query(&x, &queries, 3, DistanceKind::SqL2, GsknnConfig::default());
        let b = forest.query(&x, &queries, 3, DistanceKind::SqL2, GsknnConfig::default());
        for i in 0..20 {
            assert_eq!(a.row(i), b.row(i));
        }
    }

    #[test]
    fn f32_single_tree_big_leaf_is_exact() {
        let x = uniform(100, 6, 1);
        let queries = uniform(15, 6, 2);
        let x32 = x.cast::<f32>();
        let q32 = queries.cast::<f32>();
        let forest = Forest::build(&x32, 1, 100, 7);
        let got = forest.query(&x32, &q32, 4, DistanceKind::SqL2, GsknnConfig::default());
        // same-precision brute-force truth
        let mut want = NeighborTable::<f32>::new(15, 4);
        for i in 0..15 {
            let mut cands: Vec<knn_select::Neighbor<f32>> = (0..100)
                .map(|j| {
                    knn_select::Neighbor::new(
                        DistanceKind::SqL2.eval(q32.point(i), x32.point(j)),
                        j as u32,
                    )
                })
                .collect();
            cands.sort_unstable_by(knn_select::Neighbor::cmp_dist_idx);
            want.set_row(i, &cands[..4]);
        }
        knn_ref::oracle::assert_matches(&got, &want, 1e-4, "f32 forest vs brute force");
    }

    #[test]
    fn query_with_reused_executor_matches_query() {
        let x = uniform(200, 5, 9);
        let queries = uniform(20, 5, 10);
        let forest = Forest::build(&x, 3, 32, 13);
        let want = forest.query(&x, &queries, 3, DistanceKind::SqL2, GsknnConfig::default());
        let mut exec = Gsknn::new(GsknnConfig::default());
        // two back-to-back calls on one executor: workspace reuse must
        // not leak state between queries
        let a = forest.query_with(&mut exec, &x, &queries, 3, DistanceKind::SqL2);
        let b = forest.query_with(&mut exec, &x, &queries, 3, DistanceKind::SqL2);
        for i in 0..20 {
            assert_eq!(a.row(i), want.row(i), "row {i}");
            assert_eq!(b.row(i), want.row(i), "row {i} (second call)");
        }
    }

    #[test]
    fn non_euclidean_forest_query() {
        let x = uniform(150, 8, 21);
        let queries = uniform(10, 8, 22);
        let forest = Forest::build(&x, 4, 40, 5);
        let got = forest.query(&x, &queries, 3, DistanceKind::L1, GsknnConfig::default());
        // sanity: all ids in range, rows sorted
        for i in 0..10 {
            for nb in got.row(i).iter().filter(|nb| nb.idx != u32::MAX) {
                assert!((nb.idx as usize) < 150);
            }
            assert!(got.row(i).windows(2).all(|w| !w[1].beats(&w[0])));
        }
    }
}
