//! Streaming all-nearest-neighbors — the §1 motivation made concrete:
//! "In many applications (e.g., image datasets, streaming datasets) there
//! are frequent updates of X and computing all nearest-neighbors fast
//! efficiently is time-critical."
//!
//! [`StreamingAllNn`] maintains a neighbor table over a growing point
//! set. Each [`StreamingAllNn::insert`] appends a batch, builds one fresh
//! random tree over the *whole* set, and re-solves only the leaves that
//! contain new points — so new points get neighbors immediately and the
//! existing points in those leaves see the new candidates, at a fraction
//! of a full re-solve. Because the update stream is exactly the solvers'
//! neighbor-list contract (rows only improve), occasional
//! [`StreamingAllNn::refresh`] iterations tighten recall the same way
//! extra trees do in the batch solver.

use crate::solver::LeafKernel;
use crate::tree::build_leaf_partition;
use dataset::PointSet;
use knn_select::NeighborTable;

/// Configuration for the streaming maintainer.
#[derive(Clone, Debug)]
pub struct StreamingConfig {
    /// Points per leaf for the per-insert trees.
    pub leaf_size: usize,
    /// Full-table iterations run at construction (initial solve).
    pub initial_iterations: usize,
    /// Base RNG seed; every tree uses a fresh stream.
    pub seed: u64,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            leaf_size: 1024,
            initial_iterations: 6,
            seed: 0x57EA,
        }
    }
}

/// An all-NN table kept current while points stream in.
pub struct StreamingAllNn<K: LeafKernel> {
    x: PointSet,
    table: NeighborTable,
    k: usize,
    cfg: StreamingConfig,
    kernel: K,
    trees_built: u64,
}

impl<K: LeafKernel> StreamingAllNn<K> {
    /// Build over an initial point set (runs `initial_iterations` of the
    /// batch solver to seed the table).
    pub fn new(x: PointSet, k: usize, cfg: StreamingConfig, mut kernel: K) -> Self {
        let mut table = NeighborTable::new(x.len(), k);
        let mut trees_built = 0;
        for t in 0..cfg.initial_iterations {
            if x.is_empty() {
                break;
            }
            let leaves = build_leaf_partition(&x, cfg.leaf_size, cfg.seed + t as u64);
            for ids in &leaves {
                update_leaf_rows(&mut kernel, &x, ids, &mut table, k);
            }
            trees_built += 1;
        }
        StreamingAllNn {
            x,
            table,
            k,
            cfg,
            kernel,
            trees_built,
        }
    }

    /// The current point set.
    pub fn points(&self) -> &PointSet {
        &self.x
    }

    /// The current neighbor table (row `i` ↔ point `i`).
    pub fn table(&self) -> &NeighborTable {
        &self.table
    }

    /// Insert a batch of points (column-major, a whole number of points);
    /// returns their new id range. One fresh tree is built and only the
    /// leaves containing new points are re-solved.
    pub fn insert(&mut self, coords: &[f64]) -> std::ops::Range<usize> {
        let range = self.x.append(coords);
        self.table.push_rows(range.len());
        if range.is_empty() {
            return range;
        }
        let seed = self.cfg.seed ^ 0x1157 ^ self.trees_built;
        self.trees_built += 1;
        let leaves = build_leaf_partition(&self.x, self.cfg.leaf_size, seed);
        for ids in &leaves {
            if ids.iter().any(|&i| range.contains(&i)) {
                update_leaf_rows(&mut self.kernel, &self.x, ids, &mut self.table, self.k);
            }
        }
        range
    }

    /// Run `iterations` full batch-solver passes to tighten recall (rows
    /// only improve — the standard update contract).
    pub fn refresh(&mut self, iterations: usize) {
        for _ in 0..iterations {
            let seed = self.cfg.seed ^ 0xF5E5 ^ self.trees_built;
            self.trees_built += 1;
            let leaves = build_leaf_partition(&self.x, self.cfg.leaf_size, seed);
            for ids in &leaves {
                update_leaf_rows(&mut self.kernel, &self.x, ids, &mut self.table, self.k);
            }
        }
    }
}

fn update_leaf_rows<K: LeafKernel>(
    kernel: &mut K,
    x: &PointSet,
    ids: &[usize],
    table: &mut NeighborTable,
    k: usize,
) {
    let mut local = NeighborTable::new(ids.len(), k);
    for (row, &id) in ids.iter().enumerate() {
        local.set_row(row, table.row(id));
    }
    kernel.update_leaf(x, ids, &mut local);
    for (row, &id) in ids.iter().enumerate() {
        table.set_row(id, local.row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::GsknnLeaf;
    use dataset::{uniform, DistanceKind};
    use gsknn_core::GsknnConfig;
    use knn_ref::oracle;

    fn kernel() -> GsknnLeaf {
        GsknnLeaf::new(GsknnConfig::default(), DistanceKind::SqL2)
    }

    fn cfg(leaf: usize) -> StreamingConfig {
        StreamingConfig {
            leaf_size: leaf,
            initial_iterations: 4,
            seed: 9,
        }
    }

    #[test]
    fn single_leaf_streaming_is_exact() {
        // leaf covers everything: every insert is a full exact re-solve,
        // so the table must equal the oracle on the union at every step.
        let x0 = uniform(40, 6, 1);
        let extra = uniform(25, 6, 2);
        let mut s = StreamingAllNn::new(x0, 4, cfg(1000), kernel());
        let r = s.insert(extra.as_slice());
        assert_eq!(r, 40..65);
        let ids: Vec<usize> = (0..65).collect();
        let want = oracle::exact(s.points(), &ids, &ids, 4, DistanceKind::SqL2);
        for i in 0..65 {
            let gi: Vec<u32> = s.table().row(i).iter().map(|nb| nb.idx).collect();
            let wi: Vec<u32> = want.row(i).iter().map(|nb| nb.idx).collect();
            assert_eq!(gi, wi, "row {i}");
        }
    }

    #[test]
    fn inserts_grow_table_and_never_regress_existing_rows() {
        let x0 = dataset::gaussian_embedded(400, 12, 4, 3);
        let mut s = StreamingAllNn::new(x0, 5, cfg(64), kernel());
        let before: Vec<f64> = (0..400)
            .map(|i| s.table().row(i).last().unwrap().dist)
            .collect();
        let extra = dataset::gaussian_embedded(100, 12, 4, 5);
        let r = s.insert(extra.as_slice());
        assert_eq!(s.points().len(), 500);
        assert_eq!(s.table().len(), 500);
        for (i, &b) in before.iter().enumerate() {
            let after = s.table().row(i).last().unwrap().dist;
            assert!(after <= b + 1e-12, "row {i} regressed");
        }
        // every new point has at least one real neighbor immediately
        for i in r {
            assert!(s.table().row(i)[0].dist.is_finite(), "row {i} empty");
        }
    }

    #[test]
    fn refresh_converges_to_exact_neighbors() {
        let x0 = dataset::gaussian_embedded(300, 16, 3, 11);
        let mut s = StreamingAllNn::new(x0, 4, cfg(64), kernel());
        let extra = dataset::gaussian_embedded(60, 16, 3, 13);
        s.insert(extra.as_slice());
        let ids: Vec<usize> = (0..360).collect();
        let exact = oracle::exact(s.points(), &ids, &ids, 4, DistanceKind::SqL2);
        let before = s.table().recall_against(&exact);
        s.refresh(6);
        let after = s.table().recall_against(&exact);
        assert!(after >= before, "{before} -> {after}");
        assert!(after > 0.9, "recall after refresh: {after}");
    }

    #[test]
    fn empty_insert_is_a_noop() {
        let x0 = uniform(20, 3, 7);
        let mut s = StreamingAllNn::new(x0, 2, cfg(8), kernel());
        let before = s.table().row(5).to_vec();
        let r = s.insert(&[]);
        assert!(r.is_empty());
        assert_eq!(s.points().len(), 20);
        assert_eq!(s.table().row(5), &before[..]);
    }

    #[test]
    fn streaming_from_empty_set() {
        let x0 = dataset::PointSet::from_vec(4, 0, Vec::new());
        let mut s = StreamingAllNn::new(x0, 3, cfg(16), kernel());
        assert_eq!(s.table().len(), 0);
        let batch = uniform(30, 4, 21);
        s.insert(batch.as_slice());
        assert_eq!(s.points().len(), 30);
        // rows populated by the insert's leaf solves
        assert!(s.table().row(0)[0].dist.is_finite());
    }
}
