//! Randomized KD-tree approximate all-nearest-neighbors — the outer
//! solver (ref \[34\] of the paper) whose inner loop is the kNN kernel.
//!
//! The algorithm of §1 ("The kNN kernel"): partition the `N` points into
//! leaves of ~`m` points with a randomized space partition, solve an
//! *exact* kNN problem inside every leaf (queries = references = the
//! leaf), fold the results into the global neighbor lists, and repeat
//! with a fresh random tree until the lists converge. Every iteration is
//! embarrassingly parallel over leaves, and >90% of the runtime is inside
//! the kernel (Table 1) — which is why swapping the GEMM kernel for GSKNN
//! translates almost 1:1 into end-to-end speedup.

mod forest;
mod solver;
mod streaming;
mod tree;

pub use forest::Forest;
pub use solver::{AllNnSolver, GemmLeaf, GsknnLeaf, IterationStats, LeafKernel, RkdtConfig};
pub use streaming::{StreamingAllNn, StreamingConfig};
pub use tree::{build_leaf_partition, RpTree};
