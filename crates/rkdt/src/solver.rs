//! The iterated all-nearest-neighbor solver: per iteration, build a fresh
//! random tree, solve every leaf exactly with the plugged-in kNN kernel,
//! fold results into the global neighbor table, and report convergence.

use crate::tree::build_leaf_partition;
use dataset::{DistanceKind, PointSet};
use gsknn_core::scheduler::lpt_execute;
use gsknn_core::{FusedScalar, Gsknn, GsknnConfig, GsknnScalar, MachineParams, Model, ProblemSize};
use knn_ref::{GemmKnn, GemmScalar};
use knn_select::NeighborTable;
use rayon::prelude::*;

/// A kNN kernel usable as the leaf solver. `update_leaf` receives the
/// leaf's global point ids and a *local* table whose row `i` is the
/// current neighbor list of `ids[i]`; it must fold the leaf's exact
/// all-pairs candidates into those rows. Generic over the element type
/// (`f64` default) so the f32 fused path plugs into the same tree solver.
pub trait LeafKernel<T: GsknnScalar = f64>: Send {
    /// Fold the exact `q_ids × r_ids` search into `local` (row `i` ↔
    /// `q_ids[i]`). The LSH solver's multi-probe mode uses reference sets
    /// larger than the query set.
    fn update_bucket(
        &mut self,
        x: &PointSet<T>,
        q_ids: &[usize],
        r_ids: &[usize],
        local: &mut NeighborTable<T>,
    );

    /// Fold the exact `ids × ids` search into `local` (the KD-tree leaf
    /// case: queries = references).
    fn update_leaf(&mut self, x: &PointSet<T>, ids: &[usize], local: &mut NeighborTable<T>) {
        self.update_bucket(x, ids, ids, local)
    }

    /// Display name for reports.
    fn name(&self) -> &'static str;
}

/// GSKNN as the leaf kernel (the paper's improvement).
pub struct GsknnLeaf<T: FusedScalar = f64> {
    exec: Gsknn<T>,
    kind: DistanceKind,
}

impl<T: FusedScalar> GsknnLeaf<T> {
    /// Wrap a configured GSKNN executor.
    pub fn new(cfg: GsknnConfig, kind: DistanceKind) -> Self {
        GsknnLeaf {
            exec: Gsknn::new(cfg),
            kind,
        }
    }
}

impl<T: FusedScalar> LeafKernel<T> for GsknnLeaf<T> {
    fn update_bucket(
        &mut self,
        x: &PointSet<T>,
        q_ids: &[usize],
        r_ids: &[usize],
        local: &mut NeighborTable<T>,
    ) {
        self.exec.update(x, q_ids, r_ids, self.kind, local);
    }

    fn name(&self) -> &'static str {
        "GSKNN"
    }
}

/// The GEMM-approach reference as the leaf kernel (the Table 1 "ref").
pub struct GemmLeaf<T: GemmScalar = f64> {
    exec: GemmKnn<T>,
}

impl<T: GemmScalar> GemmLeaf<T> {
    /// Wrap a configured GEMM-approach executor.
    pub fn new(exec: GemmKnn<T>) -> Self {
        GemmLeaf { exec }
    }
}

impl Default for GemmLeaf {
    fn default() -> Self {
        GemmLeaf::new(GemmKnn::new(gsknn_core::GemmParams::ivy_bridge(), false))
    }
}

impl<T: GemmScalar> LeafKernel<T> for GemmLeaf<T> {
    fn update_bucket(
        &mut self,
        x: &PointSet<T>,
        q_ids: &[usize],
        r_ids: &[usize],
        local: &mut NeighborTable<T>,
    ) {
        self.exec.update(x, q_ids, r_ids, local);
    }

    fn name(&self) -> &'static str {
        "GEMM+heap"
    }
}

/// Solver configuration.
#[derive(Clone, Debug)]
pub struct RkdtConfig {
    /// Points per leaf (the paper's `m`; Table 1 uses 8192).
    pub leaf_size: usize,
    /// Number of random trees / iterations.
    pub iterations: usize,
    /// Base RNG seed (iteration `t` uses `seed + t`).
    pub seed: u64,
    /// Solve leaves in parallel with rayon (disjoint rows per tree, so
    /// this is race-free).
    pub parallel_leaves: bool,
    /// With `Some(p)`, use the paper's §2.5 task-parallel scheme instead
    /// of the rayon leaf loop: estimate every leaf's kernel runtime with
    /// the §2.6 model, LPT-schedule the leaves onto `p` workers (biggest
    /// first, least-loaded worker wins), and let each worker reuse one
    /// kernel context — and its packing workspace — across its whole
    /// bucket. Overrides `parallel_leaves`. The balanced-tree leaves are
    /// near-uniform, so the win over rayon's dynamic stealing is workspace
    /// reuse and deterministic placement rather than balance.
    pub lpt_workers: Option<usize>,
}

impl Default for RkdtConfig {
    fn default() -> Self {
        RkdtConfig {
            leaf_size: 8192,
            iterations: 8,
            seed: 0x5EED,
            parallel_leaves: true,
            lpt_workers: None,
        }
    }
}

/// Per-iteration progress record.
#[derive(Clone, Copy, Debug)]
pub struct IterationStats {
    /// Iteration index (0-based).
    pub iter: usize,
    /// Fraction of table rows whose k-th distance improved this round.
    pub changed_fraction: f64,
    /// Wall-clock seconds spent in leaf kernels this round.
    pub kernel_seconds: f64,
    /// Recall against the exact table, when one was supplied.
    pub recall: Option<f64>,
}

/// The iterated randomized-KD-tree all-NN solver.
pub struct AllNnSolver {
    cfg: RkdtConfig,
}

impl AllNnSolver {
    /// Solver with the given configuration.
    pub fn new(cfg: RkdtConfig) -> Self {
        AllNnSolver { cfg }
    }

    /// Run all iterations with `make_kernel` producing one kernel per
    /// worker. Returns the final table and per-iteration stats; pass
    /// `exact` to track recall (used by the Table 1 harness and tests).
    pub fn solve<T, K, F>(
        &self,
        x: &PointSet<T>,
        k: usize,
        make_kernel: F,
        exact: Option<&NeighborTable<T>>,
    ) -> (NeighborTable<T>, Vec<IterationStats>)
    where
        T: GsknnScalar,
        K: LeafKernel<T>,
        F: Fn() -> K + Sync,
    {
        let table = NeighborTable::new(x.len(), k);
        self.solve_from(x, table, make_kernel, exact)
    }

    /// As [`AllNnSolver::solve`], but starting from an existing neighbor
    /// table (e.g. produced by the LSH solver) — the solvers share the
    /// update contract, so they compose.
    pub fn solve_from<T, K, F>(
        &self,
        x: &PointSet<T>,
        mut table: NeighborTable<T>,
        make_kernel: F,
        exact: Option<&NeighborTable<T>>,
    ) -> (NeighborTable<T>, Vec<IterationStats>)
    where
        T: GsknnScalar,
        K: LeafKernel<T>,
        F: Fn() -> K + Sync,
    {
        let n = x.len();
        assert_eq!(table.len(), n, "table must have one row per point");
        let k = table.k();
        let mut stats = Vec::with_capacity(self.cfg.iterations);

        for iter in 0..self.cfg.iterations {
            let leaves = build_leaf_partition(x, self.cfg.leaf_size, self.cfg.seed + iter as u64);
            let kth_before: Vec<f64> = (0..n)
                .map(|i| {
                    table
                        .row(i)
                        .last()
                        .map_or(f64::INFINITY, |nb| nb.dist.to_f64())
                })
                .collect();

            let t0 = std::time::Instant::now();
            // Each leaf extracts its local rows, solves, and hands rows
            // back; leaves partition the ids, so writes never collide.
            let solve_leaf = |ids: &Vec<usize>| -> (Vec<usize>, NeighborTable<T>) {
                let mut local = NeighborTable::new(ids.len(), k);
                for (row, &id) in ids.iter().enumerate() {
                    local.set_row(row, table.row(id));
                }
                let mut kernel = make_kernel();
                kernel.update_leaf(x, ids, &mut local);
                (ids.clone(), local)
            };
            let results: Vec<(Vec<usize>, NeighborTable<T>)> = if let Some(p) = self.cfg.lpt_workers
            {
                // §2.5 task parallelism: model-estimated leaf costs →
                // LPT buckets → one long-lived kernel per worker.
                let model = Model::new(MachineParams::ivy_bridge_1core().for_scalar::<T>());
                let costs: Vec<f64> = leaves
                    .iter()
                    .map(|ids| {
                        model.estimate_runtime(&ProblemSize {
                            m: ids.len(),
                            n: ids.len(),
                            d: x.dim(),
                            k,
                        })
                    })
                    .collect();
                lpt_execute(&costs, p, &make_kernel, |kernel, t| {
                    let ids = &leaves[t];
                    let mut local = NeighborTable::new(ids.len(), k);
                    for (row, &id) in ids.iter().enumerate() {
                        local.set_row(row, table.row(id));
                    }
                    kernel.update_leaf(x, ids, &mut local);
                    (ids.clone(), local)
                })
            } else if self.cfg.parallel_leaves {
                leaves.par_iter().map(solve_leaf).collect()
            } else {
                leaves.iter().map(solve_leaf).collect()
            };
            for (ids, local) in results {
                for (row, id) in ids.into_iter().enumerate() {
                    table.set_row(id, local.row(row));
                }
            }
            let kernel_seconds = t0.elapsed().as_secs_f64();

            let changed = (0..n)
                .filter(|&i| {
                    let after = table
                        .row(i)
                        .last()
                        .map_or(f64::INFINITY, |nb| nb.dist.to_f64());
                    after < kth_before[i]
                })
                .count();
            stats.push(IterationStats {
                iter,
                changed_fraction: changed as f64 / n.max(1) as f64,
                kernel_seconds,
                recall: exact.map(|e| table.recall_against(e)),
            });
        }
        (table, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{gaussian_embedded, uniform};
    use knn_ref::oracle;

    #[test]
    fn single_leaf_is_exact() {
        // leaf_size >= N: one leaf = brute force in one iteration
        let x = uniform(80, 6, 3);
        let ids: Vec<usize> = (0..80).collect();
        let cfg = RkdtConfig {
            leaf_size: 80,
            iterations: 1,
            seed: 1,
            parallel_leaves: false,
            lpt_workers: None,
        };
        let (table, stats) = AllNnSolver::new(cfg).solve(
            &x,
            4,
            || GsknnLeaf::new(GsknnConfig::default(), DistanceKind::SqL2),
            None,
        );
        let want = oracle::exact(&x, &ids, &ids, 4, DistanceKind::SqL2);
        oracle::assert_matches(&table, &want, 1e-9, "single leaf");
        assert_eq!(stats.len(), 1);
        assert!(stats[0].changed_fraction > 0.99);
    }

    #[test]
    fn recall_is_monotone_over_iterations() {
        let x = gaussian_embedded(400, 16, 4, 7);
        let ids: Vec<usize> = (0..400).collect();
        let exact = oracle::exact(&x, &ids, &ids, 8, DistanceKind::SqL2);
        let cfg = RkdtConfig {
            leaf_size: 64,
            iterations: 6,
            seed: 3,
            parallel_leaves: false,
            lpt_workers: None,
        };
        let (_, stats) = AllNnSolver::new(cfg).solve(
            &x,
            8,
            || GsknnLeaf::new(GsknnConfig::default(), DistanceKind::SqL2),
            Some(&exact),
        );
        let recalls: Vec<f64> = stats.iter().map(|s| s.recall.unwrap()).collect();
        for w in recalls.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "recall regressed: {recalls:?}");
        }
        assert!(
            *recalls.last().unwrap() > recalls[0],
            "no improvement: {recalls:?}"
        );
        assert!(*recalls.last().unwrap() > 0.5, "poor recall: {recalls:?}");
    }

    #[test]
    fn gemm_and_gsknn_kernels_agree() {
        let x = uniform(300, 10, 17);
        let cfg = RkdtConfig {
            leaf_size: 50,
            iterations: 3,
            seed: 11,
            parallel_leaves: false,
            lpt_workers: None,
        };
        let solver = AllNnSolver::new(cfg);
        let (a, _) = solver.solve(
            &x,
            5,
            || GsknnLeaf::new(GsknnConfig::default(), DistanceKind::SqL2),
            None,
        );
        let (b, _) = solver.solve(&x, 5, GemmLeaf::default, None);
        for i in 0..300 {
            let ia: Vec<u32> = a.row(i).iter().map(|nb| nb.idx).collect();
            let ib: Vec<u32> = b.row(i).iter().map(|nb| nb.idx).collect();
            assert_eq!(ia, ib, "row {i}");
        }
    }

    #[test]
    fn parallel_leaves_match_serial() {
        let x = uniform(250, 7, 23);
        let mk = || GsknnLeaf::new(GsknnConfig::default(), DistanceKind::SqL2);
        let base = RkdtConfig {
            leaf_size: 40,
            iterations: 2,
            seed: 5,
            parallel_leaves: false,
            lpt_workers: None,
        };
        let (a, _) = AllNnSolver::new(base.clone()).solve(&x, 3, mk, None);
        let par = RkdtConfig {
            parallel_leaves: true,
            lpt_workers: None,
            ..base
        };
        let (b, _) = AllNnSolver::new(par).solve(&x, 3, mk, None);
        for i in 0..250 {
            assert_eq!(a.row(i), b.row(i), "row {i}");
        }
    }

    #[test]
    fn lpt_scheduled_leaves_match_serial() {
        let x = uniform(250, 7, 23);
        let mk = || GsknnLeaf::new(GsknnConfig::default(), DistanceKind::SqL2);
        let base = RkdtConfig {
            leaf_size: 40,
            iterations: 2,
            seed: 5,
            parallel_leaves: false,
            lpt_workers: None,
        };
        let (a, _) = AllNnSolver::new(base.clone()).solve(&x, 3, mk, None);
        for p in [1usize, 3] {
            let lpt = RkdtConfig {
                lpt_workers: Some(p),
                ..base.clone()
            };
            let (b, _) = AllNnSolver::new(lpt).solve(&x, 3, mk, None);
            for i in 0..250 {
                assert_eq!(a.row(i), b.row(i), "p={p} row {i}");
            }
        }
    }

    #[test]
    fn f32_solver_single_leaf_matches_f32_oracle() {
        // leaf_size >= N makes one iteration exact, so the f32 tree
        // solver must reproduce the f32 brute-force oracle.
        let x = uniform(70, 6, 31).cast::<f32>();
        let ids: Vec<usize> = (0..70).collect();
        let cfg = RkdtConfig {
            leaf_size: 70,
            iterations: 1,
            seed: 2,
            parallel_leaves: false,
            lpt_workers: None,
        };
        let (table, _) = AllNnSolver::new(cfg).solve(
            &x,
            4,
            || GsknnLeaf::<f32>::new(GsknnConfig::for_scalar::<f32>(), DistanceKind::SqL2),
            None,
        );
        let want = oracle::exact(&x, &ids, &ids, 4, DistanceKind::SqL2);
        oracle::assert_matches(&table, &want, 1e-4, "f32 single leaf");
    }

    #[test]
    fn f32_lpt_and_parallel_paths_match_serial() {
        let x = uniform(220, 7, 13).cast::<f32>();
        let mk = || GsknnLeaf::<f32>::new(GsknnConfig::for_scalar::<f32>(), DistanceKind::SqL2);
        let base = RkdtConfig {
            leaf_size: 40,
            iterations: 2,
            seed: 8,
            parallel_leaves: false,
            lpt_workers: None,
        };
        let (a, _) = AllNnSolver::new(base.clone()).solve(&x, 3, mk, None);
        for cfg in [
            RkdtConfig {
                parallel_leaves: true,
                ..base.clone()
            },
            RkdtConfig {
                lpt_workers: Some(2),
                ..base.clone()
            },
        ] {
            let (b, _) = AllNnSolver::new(cfg).solve(&x, 3, mk, None);
            for i in 0..220 {
                assert_eq!(a.row(i), b.row(i), "row {i}");
            }
        }
    }

    #[test]
    fn changed_fraction_decays() {
        let x = gaussian_embedded(300, 12, 3, 29);
        let cfg = RkdtConfig {
            leaf_size: 64,
            iterations: 5,
            seed: 9,
            parallel_leaves: false,
            lpt_workers: None,
        };
        let (_, stats) = AllNnSolver::new(cfg).solve(
            &x,
            4,
            || GsknnLeaf::new(GsknnConfig::default(), DistanceKind::SqL2),
            None,
        );
        // first iteration touches everything; later ones much less
        assert!(stats[0].changed_fraction > 0.9);
        assert!(stats.last().unwrap().changed_fraction < stats[0].changed_fraction);
    }
}
