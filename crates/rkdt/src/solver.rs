//! The iterated all-nearest-neighbor solver: per iteration, build a fresh
//! random tree, solve every leaf exactly with the plugged-in kNN kernel,
//! fold results into the global neighbor table, and report convergence.

use crate::tree::build_leaf_partition;
use dataset::{DistanceKind, PointSet};
use gsknn_core::{Gsknn, GsknnConfig};
use knn_ref::GemmKnn;
use knn_select::NeighborTable;
use rayon::prelude::*;

/// A kNN kernel usable as the leaf solver. `update_leaf` receives the
/// leaf's global point ids and a *local* table whose row `i` is the
/// current neighbor list of `ids[i]`; it must fold the leaf's exact
/// all-pairs candidates into those rows.
pub trait LeafKernel: Send {
    /// Fold the exact `q_ids × r_ids` search into `local` (row `i` ↔
    /// `q_ids[i]`). The LSH solver's multi-probe mode uses reference sets
    /// larger than the query set.
    fn update_bucket(
        &mut self,
        x: &PointSet,
        q_ids: &[usize],
        r_ids: &[usize],
        local: &mut NeighborTable,
    );

    /// Fold the exact `ids × ids` search into `local` (the KD-tree leaf
    /// case: queries = references).
    fn update_leaf(&mut self, x: &PointSet, ids: &[usize], local: &mut NeighborTable) {
        self.update_bucket(x, ids, ids, local)
    }

    /// Display name for reports.
    fn name(&self) -> &'static str;
}

/// GSKNN as the leaf kernel (the paper's improvement).
pub struct GsknnLeaf {
    exec: Gsknn,
    kind: DistanceKind,
}

impl GsknnLeaf {
    /// Wrap a configured GSKNN executor.
    pub fn new(cfg: GsknnConfig, kind: DistanceKind) -> Self {
        GsknnLeaf {
            exec: Gsknn::new(cfg),
            kind,
        }
    }
}

impl LeafKernel for GsknnLeaf {
    fn update_bucket(
        &mut self,
        x: &PointSet,
        q_ids: &[usize],
        r_ids: &[usize],
        local: &mut NeighborTable,
    ) {
        self.exec.update(x, q_ids, r_ids, self.kind, local);
    }

    fn name(&self) -> &'static str {
        "GSKNN"
    }
}

/// The GEMM-approach reference as the leaf kernel (the Table 1 "ref").
pub struct GemmLeaf {
    exec: GemmKnn,
}

impl GemmLeaf {
    /// Wrap a configured GEMM-approach executor.
    pub fn new(exec: GemmKnn) -> Self {
        GemmLeaf { exec }
    }
}

impl Default for GemmLeaf {
    fn default() -> Self {
        GemmLeaf::new(GemmKnn::new(gsknn_core::GemmParams::ivy_bridge(), false))
    }
}

impl LeafKernel for GemmLeaf {
    fn update_bucket(
        &mut self,
        x: &PointSet,
        q_ids: &[usize],
        r_ids: &[usize],
        local: &mut NeighborTable,
    ) {
        self.exec.update(x, q_ids, r_ids, local);
    }

    fn name(&self) -> &'static str {
        "GEMM+heap"
    }
}

/// Solver configuration.
#[derive(Clone, Debug)]
pub struct RkdtConfig {
    /// Points per leaf (the paper's `m`; Table 1 uses 8192).
    pub leaf_size: usize,
    /// Number of random trees / iterations.
    pub iterations: usize,
    /// Base RNG seed (iteration `t` uses `seed + t`).
    pub seed: u64,
    /// Solve leaves in parallel with rayon (disjoint rows per tree, so
    /// this is race-free).
    pub parallel_leaves: bool,
}

impl Default for RkdtConfig {
    fn default() -> Self {
        RkdtConfig {
            leaf_size: 8192,
            iterations: 8,
            seed: 0x5EED,
            parallel_leaves: true,
        }
    }
}

/// Per-iteration progress record.
#[derive(Clone, Copy, Debug)]
pub struct IterationStats {
    /// Iteration index (0-based).
    pub iter: usize,
    /// Fraction of table rows whose k-th distance improved this round.
    pub changed_fraction: f64,
    /// Wall-clock seconds spent in leaf kernels this round.
    pub kernel_seconds: f64,
    /// Recall against the exact table, when one was supplied.
    pub recall: Option<f64>,
}

/// The iterated randomized-KD-tree all-NN solver.
pub struct AllNnSolver {
    cfg: RkdtConfig,
}

impl AllNnSolver {
    /// Solver with the given configuration.
    pub fn new(cfg: RkdtConfig) -> Self {
        AllNnSolver { cfg }
    }

    /// Run all iterations with `make_kernel` producing one kernel per
    /// worker. Returns the final table and per-iteration stats; pass
    /// `exact` to track recall (used by the Table 1 harness and tests).
    pub fn solve<K, F>(
        &self,
        x: &PointSet,
        k: usize,
        make_kernel: F,
        exact: Option<&NeighborTable>,
    ) -> (NeighborTable, Vec<IterationStats>)
    where
        K: LeafKernel,
        F: Fn() -> K + Sync,
    {
        let table = NeighborTable::new(x.len(), k);
        self.solve_from(x, table, make_kernel, exact)
    }

    /// As [`AllNnSolver::solve`], but starting from an existing neighbor
    /// table (e.g. produced by the LSH solver) — the solvers share the
    /// update contract, so they compose.
    pub fn solve_from<K, F>(
        &self,
        x: &PointSet,
        mut table: NeighborTable,
        make_kernel: F,
        exact: Option<&NeighborTable>,
    ) -> (NeighborTable, Vec<IterationStats>)
    where
        K: LeafKernel,
        F: Fn() -> K + Sync,
    {
        let n = x.len();
        assert_eq!(table.len(), n, "table must have one row per point");
        let k = table.k();
        let mut stats = Vec::with_capacity(self.cfg.iterations);

        for iter in 0..self.cfg.iterations {
            let leaves = build_leaf_partition(x, self.cfg.leaf_size, self.cfg.seed + iter as u64);
            let kth_before: Vec<f64> = (0..n)
                .map(|i| table.row(i).last().map_or(f64::INFINITY, |nb| nb.dist))
                .collect();

            let t0 = std::time::Instant::now();
            // Each leaf extracts its local rows, solves, and hands rows
            // back; leaves partition the ids, so writes never collide.
            let solve_leaf = |ids: &Vec<usize>| -> (Vec<usize>, NeighborTable) {
                let mut local = NeighborTable::new(ids.len(), k);
                for (row, &id) in ids.iter().enumerate() {
                    local.set_row(row, table.row(id));
                }
                let mut kernel = make_kernel();
                kernel.update_leaf(x, ids, &mut local);
                (ids.clone(), local)
            };
            let results: Vec<(Vec<usize>, NeighborTable)> = if self.cfg.parallel_leaves {
                leaves.par_iter().map(solve_leaf).collect()
            } else {
                leaves.iter().map(solve_leaf).collect()
            };
            for (ids, local) in results {
                for (row, id) in ids.into_iter().enumerate() {
                    table.set_row(id, local.row(row));
                }
            }
            let kernel_seconds = t0.elapsed().as_secs_f64();

            let changed = (0..n)
                .filter(|&i| {
                    let after = table.row(i).last().map_or(f64::INFINITY, |nb| nb.dist);
                    after < kth_before[i]
                })
                .count();
            stats.push(IterationStats {
                iter,
                changed_fraction: changed as f64 / n.max(1) as f64,
                kernel_seconds,
                recall: exact.map(|e| table.recall_against(e)),
            });
        }
        (table, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::{gaussian_embedded, uniform};
    use knn_ref::oracle;

    #[test]
    fn single_leaf_is_exact() {
        // leaf_size >= N: one leaf = brute force in one iteration
        let x = uniform(80, 6, 3);
        let ids: Vec<usize> = (0..80).collect();
        let cfg = RkdtConfig {
            leaf_size: 80,
            iterations: 1,
            seed: 1,
            parallel_leaves: false,
        };
        let (table, stats) = AllNnSolver::new(cfg).solve(
            &x,
            4,
            || GsknnLeaf::new(GsknnConfig::default(), DistanceKind::SqL2),
            None,
        );
        let want = oracle::exact(&x, &ids, &ids, 4, DistanceKind::SqL2);
        oracle::assert_matches(&table, &want, 1e-9, "single leaf");
        assert_eq!(stats.len(), 1);
        assert!(stats[0].changed_fraction > 0.99);
    }

    #[test]
    fn recall_is_monotone_over_iterations() {
        let x = gaussian_embedded(400, 16, 4, 7);
        let ids: Vec<usize> = (0..400).collect();
        let exact = oracle::exact(&x, &ids, &ids, 8, DistanceKind::SqL2);
        let cfg = RkdtConfig {
            leaf_size: 64,
            iterations: 6,
            seed: 3,
            parallel_leaves: false,
        };
        let (_, stats) = AllNnSolver::new(cfg).solve(
            &x,
            8,
            || GsknnLeaf::new(GsknnConfig::default(), DistanceKind::SqL2),
            Some(&exact),
        );
        let recalls: Vec<f64> = stats.iter().map(|s| s.recall.unwrap()).collect();
        for w in recalls.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "recall regressed: {recalls:?}");
        }
        assert!(
            *recalls.last().unwrap() > recalls[0],
            "no improvement: {recalls:?}"
        );
        assert!(*recalls.last().unwrap() > 0.5, "poor recall: {recalls:?}");
    }

    #[test]
    fn gemm_and_gsknn_kernels_agree() {
        let x = uniform(300, 10, 17);
        let cfg = RkdtConfig {
            leaf_size: 50,
            iterations: 3,
            seed: 11,
            parallel_leaves: false,
        };
        let solver = AllNnSolver::new(cfg);
        let (a, _) = solver.solve(
            &x,
            5,
            || GsknnLeaf::new(GsknnConfig::default(), DistanceKind::SqL2),
            None,
        );
        let (b, _) = solver.solve(&x, 5, GemmLeaf::default, None);
        for i in 0..300 {
            let ia: Vec<u32> = a.row(i).iter().map(|nb| nb.idx).collect();
            let ib: Vec<u32> = b.row(i).iter().map(|nb| nb.idx).collect();
            assert_eq!(ia, ib, "row {i}");
        }
    }

    #[test]
    fn parallel_leaves_match_serial() {
        let x = uniform(250, 7, 23);
        let mk = || GsknnLeaf::new(GsknnConfig::default(), DistanceKind::SqL2);
        let base = RkdtConfig {
            leaf_size: 40,
            iterations: 2,
            seed: 5,
            parallel_leaves: false,
        };
        let (a, _) = AllNnSolver::new(base.clone()).solve(&x, 3, mk, None);
        let par = RkdtConfig {
            parallel_leaves: true,
            ..base
        };
        let (b, _) = AllNnSolver::new(par).solve(&x, 3, mk, None);
        for i in 0..250 {
            assert_eq!(a.row(i), b.row(i), "row {i}");
        }
    }

    #[test]
    fn changed_fraction_decays() {
        let x = gaussian_embedded(300, 12, 3, 29);
        let cfg = RkdtConfig {
            leaf_size: 64,
            iterations: 5,
            seed: 9,
            parallel_leaves: false,
        };
        let (_, stats) = AllNnSolver::new(cfg).solve(
            &x,
            4,
            || GsknnLeaf::new(GsknnConfig::default(), DistanceKind::SqL2),
            None,
        );
        // first iteration touches everything; later ones much less
        assert!(stats[0].changed_fraction > 0.9);
        assert!(stats.last().unwrap().changed_fraction < stats[0].changed_fraction);
    }
}
