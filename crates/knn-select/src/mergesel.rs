//! Chunked merge-sort selection (§2.2 "Merge sort"): split the n candidates
//! into ⌈n/k⌉ chunks of length k, sort each chunk (k·log k), and fold each
//! sorted chunk into the running top-k with a truncated two-way merge that
//! keeps only the first k elements. Total O(n log k) in both the best and
//! worst case, with fully contiguous memory access.
//!
//! The same truncated-merge fold is the scatter-gather substrate: a router
//! holding per-partition top-k rows collapses them into the global top-k
//! with [`merge_partial_rows`] / [`merge_partial_tables`]. Because the
//! global top-k is a subset of the union of per-partition top-ks and the
//! `(dist, idx)` order is total, the merged answer is bit-identical to
//! what a single node holding all partitions would have computed.

use crate::{Neighbor, NeighborTable};
use gsknn_scalar::GsknnScalar;

/// Select the k smallest of `cands` (ascending `(dist, idx)` order).
pub fn merge_select<T: GsknnScalar>(cands: &[Neighbor<T>], k: usize) -> Vec<Neighbor<T>> {
    if k == 0 || cands.is_empty() {
        return Vec::new();
    }
    let mut acc: Vec<Neighbor<T>> = Vec::with_capacity(k);
    let mut chunk_buf: Vec<Neighbor<T>> = Vec::with_capacity(k);
    let mut merged: Vec<Neighbor<T>> = Vec::with_capacity(k);
    for chunk in cands.chunks(k) {
        chunk_buf.clear();
        chunk_buf.extend_from_slice(chunk);
        chunk_buf.sort_unstable_by(Neighbor::cmp_dist_idx);
        merge_truncated(&acc, &chunk_buf, k, &mut merged);
        std::mem::swap(&mut acc, &mut merged);
    }
    acc
}

/// Update an existing sorted list with candidates: O(n log k) for the
/// chunk sorts plus one O(log k)-deep merge cascade — the cost the paper
/// notes makes merge selection unattractive for small n.
pub fn merge_update<T: GsknnScalar>(
    list: &[Neighbor<T>],
    cands: &[Neighbor<T>],
    k: usize,
) -> Vec<Neighbor<T>> {
    let fresh = merge_select(cands, k);
    let clean: Vec<Neighbor<T>> = list
        .iter()
        .copied()
        .filter(|n| n.dist.is_finite())
        .collect();
    let mut out = Vec::with_capacity(k);
    merge_truncated(&clean, &fresh, k, &mut out);
    out
}

/// Collapse per-partition top-k rows into the global top-k.
///
/// Each slice in `parts` must be sorted ascending by `(dist, idx)` —
/// exactly the shape of a [`NeighborTable`] row. Sentinel / non-finite
/// entries are skipped, and a reference id appearing in more than one
/// partition (overlapping partitions, or a replica answering twice) is
/// kept once at its best distance. The fold is exact: an element dropped
/// from the running top-k can never re-enter it, because later partials
/// only *add* candidates and deduplication only removes the worse copy
/// of an id whose better copy is already resident.
pub fn merge_partial_rows<T: GsknnScalar>(parts: &[&[Neighbor<T>]], k: usize) -> Vec<Neighbor<T>> {
    let mut acc: Vec<Neighbor<T>> = Vec::with_capacity(k);
    let mut merged: Vec<Neighbor<T>> = Vec::with_capacity(k);
    for part in parts {
        merge_truncated_dedup(&acc, part, k, &mut merged);
        std::mem::swap(&mut acc, &mut merged);
    }
    acc
}

/// [`merge_partial_rows`] lifted to whole tables: merge `parts` (one
/// per-partition table, all with the same row count `m`) row-by-row into
/// one `m × k` table. Returns `None` when `parts` is empty or the row
/// counts disagree — a malformed partial from a confused backend must
/// not panic the merging tier.
pub fn merge_partial_tables<T: GsknnScalar>(
    parts: &[&NeighborTable<T>],
    k: usize,
) -> Option<NeighborTable<T>> {
    let first = parts.first()?;
    let m = first.len();
    if parts.iter().any(|t| t.len() != m) {
        return None;
    }
    let mut out = NeighborTable::new(m, k);
    let mut rows: Vec<&[Neighbor<T>]> = Vec::with_capacity(parts.len());
    for i in 0..m {
        rows.clear();
        rows.extend(parts.iter().map(|t| t.row(i)));
        let merged = merge_partial_rows(&rows, k);
        out.set_row(i, &merged);
    }
    Some(out)
}

/// Merge two ascending-sorted slices into at most `k` elements with
/// unique ids: non-finite (sentinel) distances are skipped and an id
/// already in `out` is not pushed again (the ascending order guarantees
/// the resident copy is the better one).
fn merge_truncated_dedup<T: GsknnScalar>(
    a: &[Neighbor<T>],
    b: &[Neighbor<T>],
    k: usize,
    out: &mut Vec<Neighbor<T>>,
) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while out.len() < k {
        let take_b = match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) => y.beats(x),
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (None, None) => break,
        };
        let cand = if take_b {
            j += 1;
            b[j - 1]
        } else {
            i += 1;
            a[i - 1]
        };
        if !cand.dist.is_finite() || out.iter().any(|n| n.idx == cand.idx) {
            continue;
        }
        out.push(cand);
    }
}

/// Merge two ascending-sorted slices, writing at most `k` smallest elements
/// into `out` (cleared first).
fn merge_truncated<T: GsknnScalar>(
    a: &[Neighbor<T>],
    b: &[Neighbor<T>],
    k: usize,
    out: &mut Vec<Neighbor<T>>,
) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while out.len() < k {
        match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) => {
                if y.beats(x) {
                    out.push(*y);
                    j += 1;
                } else {
                    out.push(*x);
                    i += 1;
                }
            }
            (Some(x), None) => {
                out.push(*x);
                i += 1;
            }
            (None, Some(y)) => {
                out.push(*y);
                j += 1;
            }
            (None, None) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(d: f64, i: u32) -> Neighbor {
        Neighbor::new(d, i)
    }

    #[test]
    fn selects_and_sorts() {
        let cands: Vec<Neighbor> = [7.0, 3.0, 9.0, 1.0, 5.0, 2.0, 8.0]
            .iter()
            .enumerate()
            .map(|(i, &d)| n(d, i as u32))
            .collect();
        let got = merge_select(&cands, 3);
        let d: Vec<f64> = got.iter().map(|x| x.dist).collect();
        assert_eq!(d, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn chunk_boundary_exact_multiple() {
        // n divisible by k exercises the no-remainder chunk path
        let cands: Vec<Neighbor> = (0..12).map(|i| n((12 - i) as f64, i as u32)).collect();
        let got = merge_select(&cands, 4);
        let d: Vec<f64> = got.iter().map(|x| x.dist).collect();
        assert_eq!(d, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn update_folds_old_list_in() {
        let list = vec![n(0.5, 100), n(6.0, 101)];
        let cands = vec![n(1.0, 0), n(2.0, 1), n(7.0, 2)];
        let got = merge_update(&list, &cands, 2);
        let d: Vec<f64> = got.iter().map(|x| x.dist).collect();
        assert_eq!(d, vec![0.5, 1.0]);
    }

    #[test]
    fn merge_truncated_stops_at_k() {
        let a = vec![n(1.0, 0), n(3.0, 1)];
        let b = vec![n(2.0, 2), n(4.0, 3)];
        let mut out = Vec::new();
        merge_truncated(&a, &b, 3, &mut out);
        let d: Vec<f64> = out.iter().map(|x| x.dist).collect();
        assert_eq!(d, vec![1.0, 2.0, 3.0]);
    }

    /// Oracle for partial merging: concatenate every finite candidate,
    /// sort by the total `(dist, idx)` order, keep the first (= best)
    /// copy of each id, truncate to k.
    fn oracle_merge(parts: &[&[Neighbor]], k: usize) -> Vec<Neighbor> {
        let mut all: Vec<Neighbor> = parts
            .iter()
            .flat_map(|p| p.iter().copied())
            .filter(|n| n.dist.is_finite())
            .collect();
        all.sort_unstable_by(Neighbor::cmp_dist_idx);
        let mut out: Vec<Neighbor> = Vec::new();
        for c in all {
            if out.len() == k {
                break;
            }
            if !out.iter().any(|n| n.idx == c.idx) {
                out.push(c);
            }
        }
        out
    }

    #[test]
    fn partials_merge_ragged_rows() {
        // partitions answered different numbers of real neighbors
        // (sentinel-padded tails, exactly as NeighborTable rows travel)
        let s = Neighbor::sentinel();
        let a = vec![n(0.5, 10), n(2.0, 11), s];
        let b = vec![n(1.0, 20), s, s];
        let c: Vec<Neighbor> = vec![s, s, s]; // empty partition
        let got = merge_partial_rows(&[&a, &b, &c], 3);
        assert_eq!(got, vec![n(0.5, 10), n(1.0, 20), n(2.0, 11)]);
        assert_eq!(got, oracle_merge(&[&a, &b, &c], 3));
    }

    #[test]
    fn partials_dedup_ids_across_partitions_keeping_best() {
        // id 7 shows up in two partitions at different distances
        // (overlapping partitions); only the closer copy survives
        let a = vec![n(1.0, 7), n(3.0, 1)];
        let b = vec![n(2.0, 7), n(2.5, 2)];
        let got = merge_partial_rows(&[&a, &b], 3);
        assert_eq!(got, vec![n(1.0, 7), n(2.5, 2), n(3.0, 1)]);
        assert_eq!(got, oracle_merge(&[&a, &b], 3));
        // ...and order of partitions must not matter
        assert_eq!(merge_partial_rows(&[&b, &a], 3), got);
    }

    #[test]
    fn partials_k_exceeds_total_candidates() {
        // k larger than the union of all partitions: return everything,
        // sorted, without inventing entries
        let a = vec![n(4.0, 1)];
        let b = vec![n(1.0, 2)];
        let got = merge_partial_rows(&[&a, &b], 16);
        assert_eq!(got, vec![n(1.0, 2), n(4.0, 1)]);
        assert!(merge_partial_rows::<f64>(&[], 4).is_empty());
        assert!(merge_partial_rows(&[&a, &b], 0).is_empty());
    }

    #[test]
    fn partials_mixed_precision_widens_then_merges() {
        // one partition answered from the f32 lane: cast to f64 (exact)
        // and merge against the native-f64 partial
        let f32_part: Vec<Neighbor<f32>> = vec![n32(0.25, 5), n32(0.75, 6)];
        let widened: Vec<Neighbor> = f32_part.iter().map(Neighbor::cast).collect();
        let f64_part = vec![n(0.5, 1), n(1.0, 2)];
        let got = merge_partial_rows(&[&widened, &f64_part], 3);
        assert_eq!(got, vec![n(0.25, 5), n(0.5, 1), n(0.75, 6)]);
        assert_eq!(got, oracle_merge(&[&widened, &f64_part], 3));
    }

    fn n32(d: f32, i: u32) -> Neighbor<f32> {
        Neighbor::new(d, i)
    }

    #[test]
    fn partial_tables_merge_row_wise() {
        let mut a = NeighborTable::new(2, 2);
        a.set_row(0, &[n(1.0, 0), n(4.0, 1)]);
        a.set_row(1, &[n(2.0, 1)]);
        let mut b = NeighborTable::new(2, 2);
        b.set_row(0, &[n(0.5, 10)]);
        b.set_row(1, &[n(1.0, 10), n(3.0, 11)]);
        let t = merge_partial_tables(&[&a, &b], 2).expect("same m merges");
        assert_eq!(t.row(0), &[n(0.5, 10), n(1.0, 0)]);
        assert_eq!(t.row(1), &[n(1.0, 10), n(2.0, 1)]);
        // k can exceed every partial's k: tail is sentinel-padded
        let wide = merge_partial_tables(&[&a, &b], 5).unwrap();
        assert_eq!(wide.k(), 5);
        assert_eq!(wide.row(1)[3], Neighbor::sentinel());
    }

    #[test]
    fn partial_tables_reject_shape_mismatch_and_empty() {
        let a = NeighborTable::<f64>::new(2, 2);
        let b = NeighborTable::<f64>::new(3, 2);
        assert!(merge_partial_tables(&[&a, &b], 2).is_none());
        assert!(merge_partial_tables::<f64>(&[], 2).is_none());
    }

    #[test]
    fn partial_tables_absorb_duplicate_replica_answers() {
        // The hedge race in the router can deliver the *same* partition
        // twice (primary and sibling replica both answered). Merging the
        // duplicate must be a no-op: identical tables fold to themselves.
        let mut a = NeighborTable::new(2, 3);
        a.set_row(0, &[n(0.5, 3), n(1.5, 7)]);
        a.set_row(1, &[n(0.25, 9)]);
        let solo = merge_partial_tables(&[&a], 3).expect("single partial");
        let raced = merge_partial_tables(&[&a, &a], 3).expect("duplicate partial");
        for i in 0..2 {
            assert_eq!(raced.row(i), solo.row(i));
        }
        // ...and folding the duplicate into a full merge with another
        // partition changes nothing either.
        let mut b = NeighborTable::new(2, 3);
        b.set_row(0, &[n(1.0, 20)]);
        b.set_row(1, &[n(0.75, 21), n(2.0, 22)]);
        let clean = merge_partial_tables(&[&a, &b], 3).unwrap();
        let dup = merge_partial_tables(&[&a, &b, &a], 3).unwrap();
        for i in 0..2 {
            assert_eq!(dup.row(i), clean.row(i));
        }
    }

    proptest! {
        /// Table-level merging must agree with the row oracle on
        /// arbitrary tables whose rows carry cross-table duplicate ids
        /// and ragged sentinel-padded tails — the exact shape the
        /// router's hedge race produces when two replicas of one
        /// partition both answer.
        #[test]
        fn partial_tables_match_oracle(
            tables in prop::collection::vec(
                prop::collection::vec(
                    prop::collection::vec((0.0f64..50.0, 0u32..32), 0..10),
                    3..4, // m: every table must agree on the row count
                ),
                1..5,
            ),
            k in 1usize..12,
            dup in 0usize..5,
        ) {
            let built: Vec<NeighborTable> = tables
                .iter()
                .map(|rows| {
                    let mut t = NeighborTable::new(rows.len(), k);
                    for (i, row) in rows.iter().enumerate() {
                        let mut v: Vec<Neighbor> =
                            row.iter().map(|&(d, idx)| n(d, idx)).collect();
                        v.sort_unstable_by(Neighbor::cmp_dist_idx);
                        v.truncate(k);
                        t.set_row(i, &v);
                    }
                    t
                })
                .collect();
            let mut refs: Vec<&NeighborTable> = built.iter().collect();
            // a hedged replica re-delivers one table verbatim
            refs.push(&built[dup % built.len()]);
            let got = merge_partial_tables(&refs, k).expect("same m");
            for i in 0..3 {
                let rows: Vec<&[Neighbor]> = refs.iter().map(|t| t.row(i)).collect();
                let want = oracle_merge(&rows, k);
                let (filled, pad) = got.row(i).split_at(want.len());
                prop_assert_eq!(filled, want.as_slice());
                prop_assert!(pad.iter().all(|x| *x == Neighbor::sentinel()));
            }
        }
    }

    proptest! {
        /// Partial merging must agree with the sorted-vector oracle on
        /// arbitrary ragged partials with cross-partition duplicate ids.
        #[test]
        fn partials_match_oracle(
            parts in prop::collection::vec(
                prop::collection::vec((0.0f64..50.0, 0u32..40), 0..24),
                0..6,
            ),
            k in 0usize..24,
        ) {
            let sorted: Vec<Vec<Neighbor>> = parts
                .iter()
                .map(|p| {
                    let mut v: Vec<Neighbor> =
                        p.iter().map(|&(d, i)| n(d, i)).collect();
                    v.sort_unstable_by(Neighbor::cmp_dist_idx);
                    v
                })
                .collect();
            let refs: Vec<&[Neighbor]> = sorted.iter().map(|v| v.as_slice()).collect();
            let got = merge_partial_rows(&refs, k);
            prop_assert_eq!(got, oracle_merge(&refs, k));
        }
    }

    proptest! {
        #[test]
        fn matches_sort(dists in prop::collection::vec(0.0f64..100.0, 0..300), k in 0usize..40) {
            let cands: Vec<Neighbor> =
                dists.iter().enumerate().map(|(i, &d)| n(d, i as u32)).collect();
            let got = merge_select(&cands, k);
            let mut want = cands.clone();
            want.sort_unstable_by(Neighbor::cmp_dist_idx);
            want.truncate(k);
            prop_assert_eq!(got, want);
        }

        #[test]
        fn output_is_sorted(dists in prop::collection::vec(0.0f64..10.0, 1..200), k in 1usize..32) {
            let cands: Vec<Neighbor> =
                dists.iter().enumerate().map(|(i, &d)| n(d, i as u32)).collect();
            let got = merge_select(&cands, k);
            prop_assert!(got.windows(2).all(|w| !w[1].beats(&w[0])));
        }
    }
}
