//! Chunked merge-sort selection (§2.2 "Merge sort"): split the n candidates
//! into ⌈n/k⌉ chunks of length k, sort each chunk (k·log k), and fold each
//! sorted chunk into the running top-k with a truncated two-way merge that
//! keeps only the first k elements. Total O(n log k) in both the best and
//! worst case, with fully contiguous memory access.

use crate::Neighbor;
use gsknn_scalar::GsknnScalar;

/// Select the k smallest of `cands` (ascending `(dist, idx)` order).
pub fn merge_select<T: GsknnScalar>(cands: &[Neighbor<T>], k: usize) -> Vec<Neighbor<T>> {
    if k == 0 || cands.is_empty() {
        return Vec::new();
    }
    let mut acc: Vec<Neighbor<T>> = Vec::with_capacity(k);
    let mut chunk_buf: Vec<Neighbor<T>> = Vec::with_capacity(k);
    let mut merged: Vec<Neighbor<T>> = Vec::with_capacity(k);
    for chunk in cands.chunks(k) {
        chunk_buf.clear();
        chunk_buf.extend_from_slice(chunk);
        chunk_buf.sort_unstable_by(Neighbor::cmp_dist_idx);
        merge_truncated(&acc, &chunk_buf, k, &mut merged);
        std::mem::swap(&mut acc, &mut merged);
    }
    acc
}

/// Update an existing sorted list with candidates: O(n log k) for the
/// chunk sorts plus one O(log k)-deep merge cascade — the cost the paper
/// notes makes merge selection unattractive for small n.
pub fn merge_update<T: GsknnScalar>(
    list: &[Neighbor<T>],
    cands: &[Neighbor<T>],
    k: usize,
) -> Vec<Neighbor<T>> {
    let fresh = merge_select(cands, k);
    let clean: Vec<Neighbor<T>> = list
        .iter()
        .copied()
        .filter(|n| n.dist.is_finite())
        .collect();
    let mut out = Vec::with_capacity(k);
    merge_truncated(&clean, &fresh, k, &mut out);
    out
}

/// Merge two ascending-sorted slices, writing at most `k` smallest elements
/// into `out` (cleared first).
fn merge_truncated<T: GsknnScalar>(
    a: &[Neighbor<T>],
    b: &[Neighbor<T>],
    k: usize,
    out: &mut Vec<Neighbor<T>>,
) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while out.len() < k {
        match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) => {
                if y.beats(x) {
                    out.push(*y);
                    j += 1;
                } else {
                    out.push(*x);
                    i += 1;
                }
            }
            (Some(x), None) => {
                out.push(*x);
                i += 1;
            }
            (None, Some(y)) => {
                out.push(*y);
                j += 1;
            }
            (None, None) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(d: f64, i: u32) -> Neighbor {
        Neighbor::new(d, i)
    }

    #[test]
    fn selects_and_sorts() {
        let cands: Vec<Neighbor> = [7.0, 3.0, 9.0, 1.0, 5.0, 2.0, 8.0]
            .iter()
            .enumerate()
            .map(|(i, &d)| n(d, i as u32))
            .collect();
        let got = merge_select(&cands, 3);
        let d: Vec<f64> = got.iter().map(|x| x.dist).collect();
        assert_eq!(d, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn chunk_boundary_exact_multiple() {
        // n divisible by k exercises the no-remainder chunk path
        let cands: Vec<Neighbor> = (0..12).map(|i| n((12 - i) as f64, i as u32)).collect();
        let got = merge_select(&cands, 4);
        let d: Vec<f64> = got.iter().map(|x| x.dist).collect();
        assert_eq!(d, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn update_folds_old_list_in() {
        let list = vec![n(0.5, 100), n(6.0, 101)];
        let cands = vec![n(1.0, 0), n(2.0, 1), n(7.0, 2)];
        let got = merge_update(&list, &cands, 2);
        let d: Vec<f64> = got.iter().map(|x| x.dist).collect();
        assert_eq!(d, vec![0.5, 1.0]);
    }

    #[test]
    fn merge_truncated_stops_at_k() {
        let a = vec![n(1.0, 0), n(3.0, 1)];
        let b = vec![n(2.0, 2), n(4.0, 3)];
        let mut out = Vec::new();
        merge_truncated(&a, &b, 3, &mut out);
        let d: Vec<f64> = out.iter().map(|x| x.dist).collect();
        assert_eq!(d, vec![1.0, 2.0, 3.0]);
    }

    proptest! {
        #[test]
        fn matches_sort(dists in prop::collection::vec(0.0f64..100.0, 0..300), k in 0usize..40) {
            let cands: Vec<Neighbor> =
                dists.iter().enumerate().map(|(i, &d)| n(d, i as u32)).collect();
            let got = merge_select(&cands, k);
            let mut want = cands.clone();
            want.sort_unstable_by(Neighbor::cmp_dist_idx);
            want.truncate(k);
            prop_assert_eq!(got, want);
        }

        #[test]
        fn output_is_sorted(dists in prop::collection::vec(0.0f64..10.0, 1..200), k in 1usize..32) {
            let cands: Vec<Neighbor> =
                dists.iter().enumerate().map(|(i, &d)| n(d, i as u32)).collect();
            let got = merge_select(&cands, k);
            prop_assert!(got.windows(2).all(|w| !w[1].beats(&w[0])));
        }
    }
}
