//! The `Neighbor` value type and the per-query neighbor table `N`/`D`
//! (Table 2 of the paper: `N(i,:)` holds kNN ids of query `i`, `D(i,:)`
//! the squared distances). Generic over the distance scalar
//! ([`GsknnScalar`]) with `f64` as the default so the pre-existing call
//! sites compile unchanged; the f32 kernel path stores `Neighbor<f32>`.

use gsknn_scalar::GsknnScalar;

/// One neighbor candidate: a squared distance (or any ℓp distance) paired
/// with the *global* index of the reference point in the coordinate table
/// `X`.
///
/// Ordering is lexicographic on `(dist, idx)`. The hot-path comparison
/// ([`Neighbor::beats`]) uses raw `<`/`==`, under which a NaN distance
/// never beats anything (so NaN candidates are rejected by a full heap);
/// the total-order comparison ([`Neighbor::cmp_dist_idx`]) uses the IEEE
/// `totalOrder` predicate, which sorts NaN after +∞ instead of panicking.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor<T: GsknnScalar = f64> {
    /// Distance from the query (squared Euclidean for the ℓ2 kernels).
    pub dist: T,
    /// Global index of the reference point in `X`.
    pub idx: u32,
}

impl<T: GsknnScalar> Neighbor<T> {
    /// Construct a neighbor candidate.
    #[inline(always)]
    pub fn new(dist: T, idx: u32) -> Self {
        Neighbor { dist, idx }
    }

    /// The sentinel that fills an un-initialized neighbor slot: +∞ distance
    /// so that any real candidate beats it.
    #[inline(always)]
    pub fn sentinel() -> Self {
        Neighbor {
            dist: T::INFINITY,
            idx: u32::MAX,
        }
    }

    /// `true` if `self` is strictly closer than `other` under the
    /// `(dist, idx)` lexicographic order used everywhere in this workspace.
    /// A NaN distance beats nothing (and nothing beats it).
    #[inline(always)]
    pub fn beats(&self, other: &Neighbor<T>) -> bool {
        self.dist < other.dist || (self.dist == other.dist && self.idx < other.idx)
    }

    /// Total-order comparison by `(dist, idx)`, using IEEE 754
    /// `totalOrder` on the distance so it is defined (NaN sorts last)
    /// even on inputs the API boundary normally rejects.
    #[inline(always)]
    pub fn cmp_dist_idx(a: &Neighbor<T>, b: &Neighbor<T>) -> std::cmp::Ordering {
        a.dist.total_cmp(&b.dist).then(a.idx.cmp(&b.idx))
    }

    /// Widen (or narrow) the stored distance to another scalar type; used
    /// by the f32-vs-f64 agreement tests.
    #[inline]
    pub fn cast<U: GsknnScalar>(&self) -> Neighbor<U> {
        Neighbor {
            dist: U::from_f64(self.dist.to_f64()),
            idx: self.idx,
        }
    }
}

/// The all-queries result table: `m` rows of `k` neighbors, row-major, each
/// row kept sorted ascending by `(dist, idx)`.
///
/// ```
/// use knn_select::{Neighbor, NeighborTable};
/// let mut t = NeighborTable::new(2, 2);
/// t.set_row(0, &[Neighbor::new(0.1, 7), Neighbor::new(0.4, 3)]);
/// assert_eq!(t.row(0)[0].idx, 7);
/// assert_eq!(t.row(1)[0], Neighbor::sentinel()); // untouched rows are sentinels
/// ```
///
/// This is the `(N, D)` pair of Table 2 stored as an array of structs. The
/// approximate solvers ([`rkdt`](https://docs.rs/rkdt), `lsh`) carry one of
/// these across kernel invocations and pass each row back in as the initial
/// heap contents, which is how the paper's "update the neighbor lists until
/// convergence" iteration works.
#[derive(Clone, Debug)]
pub struct NeighborTable<T: GsknnScalar = f64> {
    m: usize,
    k: usize,
    rows: Vec<Neighbor<T>>,
}

impl<T: GsknnScalar> NeighborTable<T> {
    /// An `m × k` table filled with [`Neighbor::sentinel`] entries.
    pub fn new(m: usize, k: usize) -> Self {
        NeighborTable {
            m,
            k,
            rows: vec![Neighbor::sentinel(); m * k],
        }
    }

    /// Number of query rows (`m`, even when `k == 0`).
    pub fn len(&self) -> usize {
        self.m
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Neighbors per row.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Sorted neighbor row for query `i` (sentinel-padded while fewer than
    /// `k` real neighbors have been found).
    #[inline]
    pub fn row(&self, i: usize) -> &[Neighbor<T>] {
        &self.rows[i * self.k..(i + 1) * self.k]
    }

    /// Mutable row access (kept sorted by the caller).
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [Neighbor<T>] {
        &mut self.rows[i * self.k..(i + 1) * self.k]
    }

    /// Append `extra` sentinel-filled rows (new queries in a streaming
    /// setting); existing rows keep their indices.
    pub fn push_rows(&mut self, extra: usize) {
        self.m += extra;
        self.rows.resize(self.m * self.k, Neighbor::sentinel());
    }

    /// Reshape to `m × k` and refill every slot with the sentinel —
    /// observably identical to a fresh [`NeighborTable::new`], but the
    /// row storage is reused, so a table cycled through a serving
    /// workspace never reallocates once it has seen its largest batch.
    pub fn reset(&mut self, m: usize, k: usize) {
        self.m = m;
        self.k = k;
        self.rows.clear();
        self.rows.resize(m * k, Neighbor::sentinel());
    }

    /// Replace row `i` with `sorted` (must be ascending, length ≤ k);
    /// shorter rows are sentinel-padded.
    pub fn set_row(&mut self, i: usize, sorted: &[Neighbor<T>]) {
        assert!(sorted.len() <= self.k, "row longer than k");
        debug_assert!(sorted.windows(2).all(|w| !w[1].beats(&w[0])));
        let row = self.row_mut(i);
        row[..sorted.len()].copy_from_slice(sorted);
        for slot in row[sorted.len()..].iter_mut() {
            *slot = Neighbor::sentinel();
        }
    }

    /// Average recall of this table against an exact table (fraction of
    /// true neighbors found, per query, averaged). Both tables must have
    /// the same shape. Sentinel entries in `exact` are ignored (queries
    /// with fewer than `k` real neighbors).
    pub fn recall_against(&self, exact: &NeighborTable<T>) -> f64 {
        assert_eq!(self.len(), exact.len());
        assert_eq!(self.k(), exact.k());
        if self.is_empty() || self.k == 0 {
            return 1.0;
        }
        let mut total = 0.0;
        for i in 0..self.len() {
            let truth: Vec<u32> = exact
                .row(i)
                .iter()
                .filter(|n| n.idx != u32::MAX)
                .map(|n| n.idx)
                .collect();
            if truth.is_empty() {
                total += 1.0;
                continue;
            }
            let mine = self.row(i);
            let hit = truth
                .iter()
                .filter(|id| mine.iter().any(|n| n.idx == **id))
                .count();
            total += hit as f64 / truth.len() as f64;
        }
        total / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_is_lexicographic() {
        let a = Neighbor::new(1.0, 5);
        let b = Neighbor::new(1.0, 6);
        let c = Neighbor::new(0.5, 9);
        assert!(a.beats(&b));
        assert!(!b.beats(&a));
        assert!(c.beats(&a));
        assert!(!a.beats(&a));
    }

    #[test]
    fn sentinel_loses_to_everything_finite() {
        let s = Neighbor::sentinel();
        let a = Neighbor::new(1e300, 0);
        assert!(a.beats(&s));
        assert!(!s.beats(&a));
    }

    #[test]
    fn f32_neighbors_order_the_same_way() {
        let a = Neighbor::<f32>::new(1.0, 5);
        let b = Neighbor::<f32>::new(1.0, 6);
        assert!(a.beats(&b));
        assert!(Neighbor::<f32>::new(1e30, 0).beats(&Neighbor::<f32>::sentinel()));
        assert_eq!(Neighbor::cmp_dist_idx(&a, &b), std::cmp::Ordering::Less);
    }

    #[test]
    fn nan_distance_beats_nothing_and_sorts_last() {
        let nan = Neighbor::new(f64::NAN, 1);
        let inf = Neighbor::sentinel();
        let fin = Neighbor::new(3.0, 2);
        assert!(!nan.beats(&fin) && !fin.beats(&nan));
        assert!(!nan.beats(&inf) && !inf.beats(&nan));
        // total order is still defined: NaN after +inf
        assert_eq!(Neighbor::cmp_dist_idx(&inf, &nan), std::cmp::Ordering::Less);
        assert_eq!(Neighbor::cmp_dist_idx(&fin, &nan), std::cmp::Ordering::Less);
        let mut v = [nan, fin, inf];
        v.sort_unstable_by(Neighbor::cmp_dist_idx);
        assert_eq!(v[0].idx, 2);
        assert!(v[2].dist.is_nan());
    }

    #[test]
    fn cast_round_trips_indices_and_widens_distance() {
        let n32 = Neighbor::<f32>::new(0.5, 17);
        let n64: Neighbor<f64> = n32.cast();
        assert_eq!(n64.idx, 17);
        assert_eq!(n64.dist, 0.5);
    }

    #[test]
    fn table_rows_round_trip() {
        let mut t = NeighborTable::new(3, 2);
        assert_eq!(t.len(), 3);
        t.set_row(1, &[Neighbor::new(0.5, 7), Neighbor::new(1.0, 3)]);
        assert_eq!(t.row(1)[0].idx, 7);
        assert_eq!(t.row(0)[0], Neighbor::sentinel());
    }

    #[test]
    fn f32_table_uses_f32_sentinels() {
        let mut t = NeighborTable::<f32>::new(2, 2);
        t.set_row(0, &[Neighbor::new(0.5f32, 1)]);
        assert_eq!(t.row(0)[1].dist, f32::INFINITY);
        assert_eq!(t.row(0)[1].idx, u32::MAX);
    }

    #[test]
    fn short_row_is_padded() {
        let mut t = NeighborTable::new(1, 3);
        t.set_row(0, &[Neighbor::new(0.5, 7)]);
        assert_eq!(t.row(0)[1], Neighbor::sentinel());
        assert_eq!(t.row(0)[2], Neighbor::sentinel());
    }

    #[test]
    fn reset_is_observably_a_fresh_table() {
        let mut t = NeighborTable::new(4, 3);
        t.set_row(2, &[Neighbor::new(0.5, 7), Neighbor::new(1.0, 3)]);
        t.reset(2, 5);
        let fresh = NeighborTable::new(2, 5);
        assert_eq!(t.len(), fresh.len());
        assert_eq!(t.k(), fresh.k());
        for i in 0..2 {
            assert_eq!(t.row(i), fresh.row(i));
        }
        // growing past the original shape also works
        t.reset(6, 4);
        assert_eq!(t.len(), 6);
        assert!(t.row(5).iter().all(|n| *n == Neighbor::sentinel()));
    }

    #[test]
    fn recall_counts_hits() {
        let mut exact = NeighborTable::new(2, 2);
        exact.set_row(0, &[Neighbor::new(0.1, 1), Neighbor::new(0.2, 2)]);
        exact.set_row(1, &[Neighbor::new(0.1, 3), Neighbor::new(0.2, 4)]);
        let mut approx = NeighborTable::new(2, 2);
        approx.set_row(0, &[Neighbor::new(0.1, 1), Neighbor::new(0.3, 9)]);
        approx.set_row(1, &[Neighbor::new(0.1, 3), Neighbor::new(0.2, 4)]);
        let r = approx.recall_against(&exact);
        assert!((r - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "row longer than k")]
    fn set_row_rejects_long_rows() {
        let mut t = NeighborTable::new(1, 1);
        t.set_row(0, &[Neighbor::new(0.1, 1), Neighbor::new(0.2, 2)]);
    }
}
