//! The `Neighbor` value type and the per-query neighbor table `N`/`D`
//! (Table 2 of the paper: `N(i,:)` holds kNN ids of query `i`, `D(i,:)`
//! the squared distances).

/// One neighbor candidate: a squared distance (or any ℓp distance) paired
/// with the *global* index of the reference point in the coordinate table
/// `X`.
///
/// Ordering is lexicographic on `(dist, idx)`. Distances must be finite and
/// non-NaN; the kernel entry points validate this once at the boundary so
/// the hot loops can use raw `<` comparisons.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Distance from the query (squared Euclidean for the ℓ2 kernels).
    pub dist: f64,
    /// Global index of the reference point in `X`.
    pub idx: u32,
}

impl Neighbor {
    /// Construct a neighbor candidate.
    #[inline(always)]
    pub fn new(dist: f64, idx: u32) -> Self {
        Neighbor { dist, idx }
    }

    /// The sentinel that fills an un-initialized neighbor slot: +∞ distance
    /// so that any real candidate beats it.
    #[inline(always)]
    pub fn sentinel() -> Self {
        Neighbor {
            dist: f64::INFINITY,
            idx: u32::MAX,
        }
    }

    /// `true` if `self` is strictly closer than `other` under the
    /// `(dist, idx)` lexicographic order used everywhere in this workspace.
    #[inline(always)]
    pub fn beats(&self, other: &Neighbor) -> bool {
        self.dist < other.dist || (self.dist == other.dist && self.idx < other.idx)
    }

    /// Total-order comparison by `(dist, idx)`; panics on NaN distances
    /// (which are rejected at the API boundary).
    #[inline(always)]
    pub fn cmp_dist_idx(a: &Neighbor, b: &Neighbor) -> std::cmp::Ordering {
        a.dist
            .partial_cmp(&b.dist)
            .expect("NaN distance in neighbor comparison")
            .then(a.idx.cmp(&b.idx))
    }
}

/// The all-queries result table: `m` rows of `k` neighbors, row-major, each
/// row kept sorted ascending by `(dist, idx)`.
///
/// ```
/// use knn_select::{Neighbor, NeighborTable};
/// let mut t = NeighborTable::new(2, 2);
/// t.set_row(0, &[Neighbor::new(0.1, 7), Neighbor::new(0.4, 3)]);
/// assert_eq!(t.row(0)[0].idx, 7);
/// assert_eq!(t.row(1)[0], Neighbor::sentinel()); // untouched rows are sentinels
/// ```
///
/// This is the `(N, D)` pair of Table 2 stored as an array of structs. The
/// approximate solvers ([`rkdt`](https://docs.rs/rkdt), `lsh`) carry one of
/// these across kernel invocations and pass each row back in as the initial
/// heap contents, which is how the paper's "update the neighbor lists until
/// convergence" iteration works.
#[derive(Clone, Debug)]
pub struct NeighborTable {
    m: usize,
    k: usize,
    rows: Vec<Neighbor>,
}

impl NeighborTable {
    /// An `m × k` table filled with [`Neighbor::sentinel`] entries.
    pub fn new(m: usize, k: usize) -> Self {
        NeighborTable {
            m,
            k,
            rows: vec![Neighbor::sentinel(); m * k],
        }
    }

    /// Number of query rows (`m`, even when `k == 0`).
    pub fn len(&self) -> usize {
        self.m
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Neighbors per row.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Sorted neighbor row for query `i` (sentinel-padded while fewer than
    /// `k` real neighbors have been found).
    #[inline]
    pub fn row(&self, i: usize) -> &[Neighbor] {
        &self.rows[i * self.k..(i + 1) * self.k]
    }

    /// Mutable row access (kept sorted by the caller).
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [Neighbor] {
        &mut self.rows[i * self.k..(i + 1) * self.k]
    }

    /// Append `extra` sentinel-filled rows (new queries in a streaming
    /// setting); existing rows keep their indices.
    pub fn push_rows(&mut self, extra: usize) {
        self.m += extra;
        self.rows.resize(self.m * self.k, Neighbor::sentinel());
    }

    /// Replace row `i` with `sorted` (must be ascending, length ≤ k);
    /// shorter rows are sentinel-padded.
    pub fn set_row(&mut self, i: usize, sorted: &[Neighbor]) {
        assert!(sorted.len() <= self.k, "row longer than k");
        debug_assert!(sorted.windows(2).all(|w| !w[1].beats(&w[0])));
        let row = self.row_mut(i);
        row[..sorted.len()].copy_from_slice(sorted);
        for slot in row[sorted.len()..].iter_mut() {
            *slot = Neighbor::sentinel();
        }
    }

    /// Average recall of this table against an exact table (fraction of
    /// true neighbors found, per query, averaged). Both tables must have
    /// the same shape. Sentinel entries in `exact` are ignored (queries
    /// with fewer than `k` real neighbors).
    pub fn recall_against(&self, exact: &NeighborTable) -> f64 {
        assert_eq!(self.len(), exact.len());
        assert_eq!(self.k(), exact.k());
        if self.is_empty() || self.k == 0 {
            return 1.0;
        }
        let mut total = 0.0;
        for i in 0..self.len() {
            let truth: Vec<u32> = exact
                .row(i)
                .iter()
                .filter(|n| n.idx != u32::MAX)
                .map(|n| n.idx)
                .collect();
            if truth.is_empty() {
                total += 1.0;
                continue;
            }
            let mine = self.row(i);
            let hit = truth
                .iter()
                .filter(|id| mine.iter().any(|n| n.idx == **id))
                .count();
            total += hit as f64 / truth.len() as f64;
        }
        total / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_is_lexicographic() {
        let a = Neighbor::new(1.0, 5);
        let b = Neighbor::new(1.0, 6);
        let c = Neighbor::new(0.5, 9);
        assert!(a.beats(&b));
        assert!(!b.beats(&a));
        assert!(c.beats(&a));
        assert!(!a.beats(&a));
    }

    #[test]
    fn sentinel_loses_to_everything_finite() {
        let s = Neighbor::sentinel();
        let a = Neighbor::new(1e300, 0);
        assert!(a.beats(&s));
        assert!(!s.beats(&a));
    }

    #[test]
    fn table_rows_round_trip() {
        let mut t = NeighborTable::new(3, 2);
        assert_eq!(t.len(), 3);
        t.set_row(1, &[Neighbor::new(0.5, 7), Neighbor::new(1.0, 3)]);
        assert_eq!(t.row(1)[0].idx, 7);
        assert_eq!(t.row(0)[0], Neighbor::sentinel());
    }

    #[test]
    fn short_row_is_padded() {
        let mut t = NeighborTable::new(1, 3);
        t.set_row(0, &[Neighbor::new(0.5, 7)]);
        assert_eq!(t.row(0)[1], Neighbor::sentinel());
        assert_eq!(t.row(0)[2], Neighbor::sentinel());
    }

    #[test]
    fn recall_counts_hits() {
        let mut exact = NeighborTable::new(2, 2);
        exact.set_row(0, &[Neighbor::new(0.1, 1), Neighbor::new(0.2, 2)]);
        exact.set_row(1, &[Neighbor::new(0.1, 3), Neighbor::new(0.2, 4)]);
        let mut approx = NeighborTable::new(2, 2);
        approx.set_row(0, &[Neighbor::new(0.1, 1), Neighbor::new(0.3, 9)]);
        approx.set_row(1, &[Neighbor::new(0.1, 3), Neighbor::new(0.2, 4)]);
        let r = approx.recall_against(&exact);
        assert!((r - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "row longer than k")]
    fn set_row_rejects_long_rows() {
        let mut t = NeighborTable::new(1, 1);
        t.set_row(0, &[Neighbor::new(0.1, 1), Neighbor::new(0.2, 2)]);
    }
}
