//! Neighbor-selection algorithms for the k-nearest-neighbors kernel.
//!
//! This crate implements the selection substrate discussed in §2.2 / Table 3
//! of the GSKNN paper (Yu et al., SC'15):
//!
//! * [`BinaryMaxHeap`] — a textbook array-backed binary max-heap with an
//!   O(1) root probe and replace-root update. This is the selection
//!   structure GSKNN's Var#1 uses for small `k`.
//! * [`DHeap`] — an implicit d-ary max-heap ([LaMarca & Ladner]) stored
//!   structure-of-arrays with the root padded to offset `D-1` so every
//!   group of `D` children is contiguous and aligned; `DHeap<4>` is the
//!   paper's "4-heap" used by Var#6 for large `k`.
//! * [`quickselect_k_smallest`] — Hoare's FIND: O(n) average selection of the k
//!   smallest, used as a baseline (Table 3 row "Quick Select").
//! * [`merge_select`] — chunked merge-sort selection: O(n log k) best and
//!   worst case (Table 3 row "Merge Sort").
//!
//! All algorithms order candidates by `(distance, index)` lexicographically
//! (see [`Neighbor`]), which makes every implementation in this workspace
//! return bit-identical neighbor sets on tie-free inputs and deterministic
//! sets in the presence of ties.
//!
//! [LaMarca & Ladner]: https://doi.org/10.1145/235141.235145

mod binary_heap;
mod dheap;
mod mergesel;
mod neighbor;
mod quickselect;
mod serialize;

pub use binary_heap::BinaryMaxHeap;
pub use dheap::{DHeap, FourHeap};
pub use mergesel::{merge_partial_rows, merge_partial_tables, merge_select, merge_update};
pub use neighbor::{Neighbor, NeighborTable};
pub use quickselect::{quickselect_k_smallest, quickselect_update};
pub use serialize::{encoded_len_of, DecodeError};

/// A uniform interface over the selection algorithms so they can be
/// cross-checked against each other (and benchmarked side by side in the
/// Table 3 harness).
pub trait SelectK {
    /// Return the `k` smallest candidates in ascending `(dist, idx)` order.
    /// If `cands.len() < k`, returns all of them sorted.
    fn select(&self, cands: &[Neighbor], k: usize) -> Vec<Neighbor>;

    /// Merge `cands` into an existing sorted neighbor list `list`
    /// (ascending), returning the updated sorted list of at most `k`.
    fn update(&self, list: &[Neighbor], cands: &[Neighbor], k: usize) -> Vec<Neighbor> {
        let mut all = Vec::with_capacity(list.len() + cands.len());
        all.extend_from_slice(list);
        all.extend_from_slice(cands);
        self.select(&all, k)
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// [`SelectK`] via a binary max-heap (the GSKNN default for small `k`).
#[derive(Debug, Default, Clone, Copy)]
pub struct HeapSelect;

impl SelectK for HeapSelect {
    fn select(&self, cands: &[Neighbor], k: usize) -> Vec<Neighbor> {
        let mut heap = BinaryMaxHeap::new(k);
        for &c in cands {
            heap.push(c);
        }
        heap.into_sorted_vec()
    }

    fn name(&self) -> &'static str {
        "heap"
    }
}

/// [`SelectK`] via a padded 4-ary max-heap (the GSKNN choice for large `k`).
#[derive(Debug, Default, Clone, Copy)]
pub struct FourHeapSelect;

impl SelectK for FourHeapSelect {
    fn select(&self, cands: &[Neighbor], k: usize) -> Vec<Neighbor> {
        let mut heap = FourHeap::new(k);
        for &c in cands {
            heap.push(c);
        }
        heap.into_sorted_vec()
    }

    fn name(&self) -> &'static str {
        "4-heap"
    }
}

/// [`SelectK`] via quickselect (Hoare's FIND).
#[derive(Debug, Default, Clone, Copy)]
pub struct QuickSelect;

impl SelectK for QuickSelect {
    fn select(&self, cands: &[Neighbor], k: usize) -> Vec<Neighbor> {
        let mut buf = cands.to_vec();
        let mut out = quickselect_k_smallest(&mut buf, k);
        out.sort_unstable_by(Neighbor::cmp_dist_idx);
        out
    }

    fn name(&self) -> &'static str {
        "quickselect"
    }
}

/// [`SelectK`] via chunked merge-sort selection.
#[derive(Debug, Default, Clone, Copy)]
pub struct MergeSelect;

impl SelectK for MergeSelect {
    fn select(&self, cands: &[Neighbor], k: usize) -> Vec<Neighbor> {
        merge_select(cands, k)
    }

    fn name(&self) -> &'static str {
        "merge"
    }
}

/// Reference selection: full sort then truncate. O(n log n); used only as
/// the oracle in tests and the Table 3 baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct SortSelect;

impl SelectK for SortSelect {
    fn select(&self, cands: &[Neighbor], k: usize) -> Vec<Neighbor> {
        let mut buf = cands.to_vec();
        buf.sort_unstable_by(Neighbor::cmp_dist_idx);
        buf.truncate(k);
        buf
    }

    fn name(&self) -> &'static str {
        "sort"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands(dists: &[f64]) -> Vec<Neighbor> {
        dists
            .iter()
            .enumerate()
            .map(|(i, &d)| Neighbor::new(d, i as u32))
            .collect()
    }

    fn all_selectors() -> Vec<Box<dyn SelectK>> {
        vec![
            Box::new(HeapSelect),
            Box::new(FourHeapSelect),
            Box::new(QuickSelect),
            Box::new(MergeSelect),
        ]
    }

    #[test]
    fn all_agree_with_sort_on_distinct_input() {
        let c = cands(&[5.0, 1.0, 4.0, 2.5, 9.0, 0.5, 7.0, 3.0]);
        let want = SortSelect.select(&c, 3);
        for s in all_selectors() {
            assert_eq!(s.select(&c, 3), want, "{} disagrees", s.name());
        }
    }

    #[test]
    fn all_agree_with_sort_on_ties() {
        let c = cands(&[1.0, 1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
        let want = SortSelect.select(&c, 4);
        for s in all_selectors() {
            assert_eq!(s.select(&c, 4), want, "{} disagrees", s.name());
        }
    }

    #[test]
    fn k_larger_than_n_returns_all_sorted() {
        let c = cands(&[3.0, 1.0, 2.0]);
        for s in all_selectors() {
            assert_eq!(s.select(&c, 10), SortSelect.select(&c, 10));
        }
    }

    #[test]
    fn k_zero_returns_empty() {
        let c = cands(&[3.0, 1.0]);
        for s in all_selectors() {
            assert!(s.select(&c, 0).is_empty());
        }
    }

    #[test]
    fn update_merges_lists() {
        let list = SortSelect.select(&cands(&[1.0, 3.0, 5.0]), 3);
        let newc = vec![Neighbor::new(2.0, 100), Neighbor::new(4.0, 101)];
        for s in all_selectors() {
            let got = s.update(&list, &newc, 3);
            let d: Vec<f64> = got.iter().map(|n| n.dist).collect();
            assert_eq!(d, vec![1.0, 2.0, 3.0], "{}", s.name());
        }
    }
}
