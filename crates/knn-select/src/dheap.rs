//! Implicit d-ary max-heap with padded, structure-of-arrays storage.
//!
//! This is the "d-heap" of §2.2/§2.4 and Figure 1 of the paper: by giving
//! every node `D` children and padding the root so that each group of `D`
//! children is contiguous and starts on a `D`-aligned offset, all children
//! of a node land in one cache line, and the max-child search over a group
//! can be vectorized. GSKNN uses `D = 4` ([`FourHeap`]) for large-`k`
//! selection (Var#6) and the binary heap for small `k` (Var#1).
//!
//! Storage layout (logical node `j` lives at storage slot `j + D - 1`):
//!
//! ```text
//! storage:  [pad × (D-1)] [root] [children of root: D slots] [grandchildren …]
//! index:     0 … D-2       D-1    D … 2D-1                    D*(j+1)…
//! ```
//!
//! so the children of logical node `j` occupy storage slots
//! `D*(j+1) .. D*(j+1)+D`, a `D`-aligned group. Distances and indices are
//! stored in separate arrays (structure of arrays) so the distance group is
//! exactly `D` consecutive `f64`s — one AVX register load for `D = 4`.

use crate::Neighbor;
use gsknn_scalar::GsknnScalar;

/// Padded d-ary bounded max-heap of neighbors ordered by `(dist, idx)`.
/// Generic over the distance scalar with `f64` as the default; for `f32`
/// the `D = 4` child group is half a cache line (the natural f32 choice is
/// `DHeap<8, f32>`, one full line / one AVX2 register of distances).
#[derive(Clone, Debug)]
pub struct DHeap<const D: usize, T: GsknnScalar = f64> {
    k: usize,
    len: usize,
    /// `D-1` pad slots, then `k` node slots, then tail pad to a multiple of
    /// `D`; pads hold `-inf` so a vector max over a child group never picks
    /// them.
    dists: Vec<T>,
    idxs: Vec<u32>,
}

/// The paper's 4-heap: all four children of a node share one cache line
/// (for f64; the f32 group is half a line — see the type docs above).
pub type FourHeap<T = f64> = DHeap<4, T>;

impl<const D: usize, T: GsknnScalar> DHeap<D, T> {
    const PAD: usize = D - 1;

    /// Empty heap with capacity `k`.
    pub fn new(k: usize) -> Self {
        assert!(D >= 2, "d-ary heap needs D >= 2");
        let cap = (Self::PAD + k).div_ceil(D) * D + D; // room for one full tail group
        DHeap {
            k,
            len: 0,
            dists: vec![T::NEG_INFINITY; cap],
            idxs: vec![u32::MAX; cap],
        }
    }

    /// Build from an existing row (sentinels dropped), Floyd-style.
    pub fn from_row(k: usize, row: &[Neighbor<T>]) -> Self {
        let mut heap = Self::new(k);
        for n in row.iter().filter(|n| n.dist.is_finite()) {
            // Insert unconditionally: from_row is cold-path, so a simple
            // push-based build keeps the code single-sourced.
            heap.push(*n);
        }
        heap
    }

    /// Capacity `k`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Number of stored neighbors.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` once `k` neighbors are stored.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.k
    }

    /// Pruning bound: worst kept distance when full, +∞ otherwise.
    #[inline(always)]
    pub fn threshold(&self) -> T {
        if self.is_full() && self.k > 0 {
            self.dists[Self::PAD]
        } else {
            T::INFINITY
        }
    }

    /// Current root (worst kept neighbor).
    #[inline]
    pub fn root(&self) -> Option<Neighbor<T>> {
        if self.len == 0 {
            None
        } else {
            Some(self.get(0))
        }
    }

    #[inline(always)]
    fn get(&self, logical: usize) -> Neighbor<T> {
        let s = logical + Self::PAD;
        Neighbor::new(self.dists[s], self.idxs[s])
    }

    #[inline(always)]
    fn set(&mut self, logical: usize, n: Neighbor<T>) {
        let s = logical + Self::PAD;
        self.dists[s] = n.dist;
        self.idxs[s] = n.idx;
    }

    /// Offer a candidate; returns `true` if kept.
    #[inline]
    pub fn push(&mut self, cand: Neighbor<T>) -> bool {
        if self.k == 0 {
            return false;
        }
        if self.len < self.k {
            self.set(self.len, cand);
            self.len += 1;
            self.sift_up(self.len - 1);
            true
        } else if cand.beats(&self.get(0)) {
            self.set(0, cand);
            self.sift_down(0);
            true
        } else {
            false
        }
    }

    /// As [`DHeap::push`] but id-unique: candidates whose `idx` is already
    /// stored are dropped (see `BinaryMaxHeap::push_unique` for why the
    /// iterated solvers need this).
    #[inline]
    pub fn push_unique(&mut self, cand: Neighbor<T>) -> bool {
        if self.k == 0 {
            return false;
        }
        if self.len == self.k && !cand.beats(&self.get(0)) {
            return false;
        }
        let occupied = &self.idxs[Self::PAD..Self::PAD + self.len];
        if occupied.contains(&cand.idx) {
            return false;
        }
        self.push(cand)
    }

    /// Remove and return the max (worst) neighbor.
    pub fn pop(&mut self) -> Option<Neighbor<T>> {
        if self.len == 0 {
            return None;
        }
        let top = self.get(0);
        self.len -= 1;
        if self.len > 0 {
            let last = self.get(self.len);
            self.clear_slot(self.len);
            self.set(0, last);
            self.sift_down(0);
        } else {
            self.clear_slot(0);
        }
        Some(top)
    }

    #[inline]
    fn clear_slot(&mut self, logical: usize) {
        let s = logical + Self::PAD;
        self.dists[s] = T::NEG_INFINITY;
        self.idxs[s] = u32::MAX;
    }

    /// Drain into an ascending `(dist, idx)`-sorted vector.
    pub fn into_sorted_vec(self) -> Vec<Neighbor<T>> {
        let mut out: Vec<Neighbor<T>> = (0..self.len).map(|j| self.get(j)).collect();
        out.sort_unstable_by(Neighbor::cmp_dist_idx);
        out
    }

    /// Empty the heap and set a new capacity, keeping (and if needed
    /// growing) the padded storage — observably identical to
    /// [`DHeap::new`] but allocation-free once the heap has seen its
    /// largest `k`.
    pub fn reset(&mut self, k: usize) {
        let cap = (Self::PAD + k).div_ceil(D) * D + D;
        self.k = k;
        self.len = 0;
        self.dists.clear();
        self.dists.resize(cap, T::NEG_INFINITY);
        self.idxs.clear();
        self.idxs.resize(cap, u32::MAX);
    }

    /// Append the stored neighbors to `out` in ascending `(dist, idx)`
    /// order without consuming the heap — the reusable-workspace form of
    /// [`DHeap::into_sorted_vec`] (identical contents: both sort the same
    /// entry set with the same comparator).
    pub fn sorted_into(&self, out: &mut Vec<Neighbor<T>>) {
        let start = out.len();
        out.extend((0..self.len).map(|j| self.get(j)));
        out[start..].sort_unstable_by(Neighbor::cmp_dist_idx);
    }

    #[inline]
    fn sift_up(&mut self, mut j: usize) {
        while j > 0 {
            let parent = (j - 1) / D;
            let me = self.get(j);
            let p = self.get(parent);
            if p.beats(&me) {
                // parent strictly smaller than child: bubble the child up
                self.set(j, p);
                self.set(parent, me);
                j = parent;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn sift_down(&mut self, mut j: usize) {
        loop {
            let first_child = D * j + 1;
            if first_child >= self.len {
                break;
            }
            let big = self.max_child(j);
            let me = self.get(j);
            let b = self.get(big);
            if me.beats(&b) {
                // parent smaller than its largest child: swap down
                self.set(j, b);
                self.set(big, me);
                j = big;
            } else {
                break;
            }
        }
    }

    /// Logical index of the largest child of logical node `j`
    /// (caller guarantees at least one child exists). The group of `D`
    /// child distances is contiguous at storage `D*(j+1)`; pads hold `-inf`
    /// so scanning the full group is safe even past `len`.
    #[inline(always)]
    fn max_child(&self, j: usize) -> usize {
        let group = D * (j + 1); // storage offset of first child
        let mut best_s = group;
        // Fixed-trip-count loop over the group: the compiler unrolls and,
        // for D=4, vectorizes the distance compares.
        for s in group + 1..group + D {
            let (bd, bi) = (self.dists[best_s], self.idxs[best_s]);
            let (cd, ci) = (self.dists[s], self.idxs[s]);
            if cd > bd || (cd == bd && ci > bi) {
                best_s = s;
            }
        }
        best_s - Self::PAD
    }

    /// Verify the max-heap invariant (tests / debug only).
    pub fn check_invariant(&self) -> bool {
        for j in 1..self.len {
            let parent = (j - 1) / D;
            if self.get(parent).beats(&self.get(j)) {
                return false;
            }
        }
        // pads must all be -inf
        let pads_ok = self.dists[..Self::PAD]
            .iter()
            .all(|&d| d == T::NEG_INFINITY)
            && self.dists[Self::PAD + self.len..]
                .iter()
                .all(|&d| d == T::NEG_INFINITY);
        pads_ok
    }
}

impl FourHeap {
    /// SIMD max-child search over the 4-wide child group using AVX2, as
    /// described in §2.4 ("Vectorizing the maximum child search"). Falls
    /// back to the scalar scan when AVX2 is unavailable. Exposed so the
    /// benches can compare it against the scalar path; `sift_down` uses
    /// the scalar path, which the compiler vectorizes identically on the
    /// fixed 4-trip loop.
    #[inline]
    pub fn max_child_simd(&self, j: usize) -> usize {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 presence checked above; group+4 <= dists.len()
                // by construction (tail pad of one full group).
                return unsafe { self.max_child_avx2(j) };
            }
        }
        self.max_child(j)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn max_child_avx2(&self, j: usize) -> usize {
        use std::arch::x86_64::*;
        let group = 4 * (j + 1);
        debug_assert!(group + 4 <= self.dists.len());
        let v = _mm256_loadu_pd(self.dists.as_ptr().add(group));
        // horizontal max of 4 lanes
        let swapped = _mm256_permute2f128_pd(v, v, 0x01);
        let m1 = _mm256_max_pd(v, swapped);
        let m2 = _mm256_max_pd(m1, _mm256_permute_pd(m1, 0x5));
        // all lanes of m2 now hold the max distance
        let mask = _mm256_movemask_pd(_mm256_cmp_pd(v, m2, _CMP_EQ_OQ)) as u32;
        // resolve distance ties by the largest index among max-dist lanes
        let mut best_s = group + mask.trailing_zeros() as usize;
        let mut rest = mask & (mask - 1);
        while rest != 0 {
            let s = group + rest.trailing_zeros() as usize;
            if self.idxs[s] > self.idxs[best_s] {
                best_s = s;
            }
            rest &= rest - 1;
        }
        best_s - Self::PAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(d: f64, i: u32) -> Neighbor {
        Neighbor::new(d, i)
    }

    #[test]
    fn four_heap_keeps_k_smallest() {
        let mut h = FourHeap::new(3);
        for (i, d) in [9.0, 2.0, 7.0, 1.0, 5.0, 3.0, 0.5].iter().enumerate() {
            h.push(n(*d, i as u32));
            assert!(h.check_invariant());
        }
        let got: Vec<f64> = h.into_sorted_vec().iter().map(|x| x.dist).collect();
        assert_eq!(got, vec![0.5, 1.0, 2.0]);
    }

    #[test]
    fn pop_returns_descending() {
        let mut h = FourHeap::new(8);
        for (i, d) in [4.0, 1.0, 3.0, 2.0, 5.0].iter().enumerate() {
            h.push(n(*d, i as u32));
        }
        let mut popped = Vec::new();
        while let Some(x) = h.pop() {
            popped.push(x.dist);
            assert!(h.check_invariant());
        }
        assert_eq!(popped, vec![5.0, 4.0, 3.0, 2.0, 1.0]);
    }

    #[test]
    fn reset_behaves_like_new() {
        let mut h = FourHeap::new(3);
        for (i, d) in [9.0, 2.0, 7.0, 1.0].iter().enumerate() {
            h.push(n(*d, i as u32));
        }
        h.reset(5);
        assert_eq!(h.threshold(), f64::INFINITY);
        for (i, d) in [5.0, 3.0, 4.0, 8.0, 6.0, 2.0].iter().enumerate() {
            h.push(n(*d, 10 + i as u32));
            assert!(h.check_invariant());
        }
        let got: Vec<f64> = h.into_sorted_vec().iter().map(|x| x.dist).collect();
        assert_eq!(got, vec![2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn sorted_into_matches_into_sorted_vec_and_appends() {
        let mut h = FourHeap::new(4);
        for (i, d) in [9.0, 2.0, 7.0, 1.0, 5.0].iter().enumerate() {
            h.push(n(*d, i as u32));
        }
        let mut out = vec![n(-1.0, 99)];
        h.sorted_into(&mut out);
        assert_eq!(out[0], n(-1.0, 99), "existing entries untouched");
        assert_eq!(out[1..].to_vec(), h.into_sorted_vec());
    }

    #[test]
    fn threshold_matches_binary_heap_semantics() {
        let mut h = FourHeap::new(2);
        assert_eq!(h.threshold(), f64::INFINITY);
        h.push(n(3.0, 0));
        assert_eq!(h.threshold(), f64::INFINITY);
        h.push(n(1.0, 1));
        assert_eq!(h.threshold(), 3.0);
    }

    #[test]
    fn f32_eight_heap_keeps_k_smallest() {
        // the natural f32 geometry: 8 children = one cache line of f32s
        let mut h: DHeap<8, f32> = DHeap::new(3);
        for (i, d) in [9.0f32, 2.0, 7.0, 1.0, 5.0, 3.0, 0.5].iter().enumerate() {
            h.push(Neighbor::new(*d, i as u32));
            assert!(h.check_invariant());
        }
        assert_eq!(h.threshold(), 2.0f32);
        let got: Vec<f32> = h.into_sorted_vec().iter().map(|x| x.dist).collect();
        assert_eq!(got, vec![0.5, 1.0, 2.0]);
    }

    #[test]
    fn full_four_heap_rejects_nan() {
        let mut h = FourHeap::new(2);
        h.push(n(1.0, 0));
        h.push(n(2.0, 1));
        assert!(!h.push(n(f64::NAN, 9)));
        assert!(h.check_invariant());
        assert_eq!(h.into_sorted_vec().len(), 2);
    }

    #[test]
    fn ternary_heap_works_too() {
        let mut h: DHeap<3> = DHeap::new(4);
        for (i, d) in [6.0, 2.0, 8.0, 4.0, 1.0, 7.0].iter().enumerate() {
            h.push(n(*d, i as u32));
            assert!(h.check_invariant());
        }
        let got: Vec<f64> = h.into_sorted_vec().iter().map(|x| x.dist).collect();
        assert_eq!(got, vec![1.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn simd_max_child_matches_scalar() {
        let mut h = FourHeap::new(64);
        let mut state = 0x243F6A8885A308D3u64;
        for i in 0..64u32 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let d = (state >> 11) as f64 / (1u64 << 53) as f64;
            h.push(n(d, i));
        }
        for j in 0..15 {
            assert_eq!(h.max_child_simd(j), h.max_child(j), "node {j}");
        }
    }

    #[test]
    fn simd_max_child_breaks_dist_ties_by_index() {
        // Construct a heap where one child group has equal distances.
        let mut h = FourHeap::new(8);
        h.push(n(9.0, 0)); // root
        for i in 1..=4u32 {
            h.push(n(5.0, i)); // all four children equal dist
        }
        assert_eq!(h.max_child_simd(0), h.max_child(0));
    }

    proptest! {
        #[test]
        fn matches_sort_truncate(dists in prop::collection::vec(0.0f64..100.0, 0..300), k in 0usize..40) {
            let cands: Vec<Neighbor> =
                dists.iter().enumerate().map(|(i, &d)| n(d, i as u32)).collect();
            let mut h = FourHeap::new(k);
            for &c in &cands { h.push(c); }
            prop_assert!(h.check_invariant());
            let got = h.into_sorted_vec();
            let mut want = cands.clone();
            want.sort_unstable_by(Neighbor::cmp_dist_idx);
            want.truncate(k);
            prop_assert_eq!(got, want);
        }

        #[test]
        fn agrees_with_binary_heap(dists in prop::collection::vec(0.0f64..10.0, 0..200), k in 1usize..32) {
            let cands: Vec<Neighbor> =
                dists.iter().enumerate().map(|(i, &d)| n(d, i as u32)).collect();
            let mut four = FourHeap::new(k);
            let mut two = crate::BinaryMaxHeap::new(k);
            for &c in &cands {
                four.push(c);
                two.push(c);
                prop_assert_eq!(four.threshold(), two.threshold());
            }
            prop_assert_eq!(four.into_sorted_vec(), two.into_sorted_vec());
        }

        #[test]
        fn pop_sequence_is_monotone(dists in prop::collection::vec(0.0f64..10.0, 1..100)) {
            let mut h = FourHeap::new(dists.len());
            for (i, &d) in dists.iter().enumerate() { h.push(n(d, i as u32)); }
            let mut prev = f64::INFINITY;
            while let Some(x) = h.pop() {
                prop_assert!(x.dist <= prev);
                prev = x.dist;
                prop_assert!(h.check_invariant());
            }
        }
    }
}
