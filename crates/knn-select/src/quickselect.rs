//! Quickselect (Hoare's FIND, [Hoare 1961]) — the Table 3 "Quick Select"
//! baseline: O(n) average selection of the k smallest, O(n + k) best case
//! when updating an existing neighbor list (concatenate and re-select).
//!
//! [Hoare 1961]: https://doi.org/10.1145/366622.366647

use crate::Neighbor;
use gsknn_scalar::GsknnScalar;

/// Partition `buf` in place so that its first `min(k, len)` entries are the
/// k smallest under `(dist, idx)` (in unspecified order) and return them as
/// a vector.
pub fn quickselect_k_smallest<T: GsknnScalar>(
    buf: &mut [Neighbor<T>],
    k: usize,
) -> Vec<Neighbor<T>> {
    let k = k.min(buf.len());
    if k == 0 {
        return Vec::new();
    }
    if k < buf.len() {
        select_in_place(buf, k);
    }
    buf[..k].to_vec()
}

/// Update a sorted neighbor list with new candidates: concatenate and
/// re-select, the paper's O(n + k) list-update scheme. Returns the new
/// sorted list of at most `k` entries.
pub fn quickselect_update<T: GsknnScalar>(
    list: &[Neighbor<T>],
    cands: &[Neighbor<T>],
    k: usize,
) -> Vec<Neighbor<T>> {
    let mut all = Vec::with_capacity(list.len() + cands.len());
    all.extend(list.iter().copied().filter(|n| n.dist.is_finite()));
    all.extend_from_slice(cands);
    let mut out = quickselect_k_smallest(&mut all, k);
    out.sort_unstable_by(Neighbor::cmp_dist_idx);
    out
}

/// After return, `buf[..k]` holds the k smallest elements (unordered) and
/// `buf[k..]` the rest. Iterative selection over a shrinking window using a
/// three-way (Dutch national flag) partition with median-of-3 pivoting; the
/// equal-to-pivot middle block guarantees progress even on constant input.
fn select_in_place<T: GsknnScalar>(buf: &mut [Neighbor<T>], k: usize) {
    debug_assert!(k > 0 && k < buf.len());
    let mut lo = 0usize;
    let mut hi = buf.len(); // exclusive
    loop {
        if hi - lo <= 8 {
            // small window: insertion-sort it and stop
            buf[lo..hi].sort_unstable_by(Neighbor::cmp_dist_idx);
            return;
        }
        let (lt, gt) = partition3(buf, lo, hi);
        // buf[lo..lt] < pivot == buf[lt..gt] < buf[gt..hi]
        if k <= lt {
            hi = lt;
            if k == lt {
                return;
            }
        } else if k >= gt {
            lo = gt;
            if k == gt {
                return;
            }
        } else {
            // the boundary falls inside the equal-to-pivot block: done
            return;
        }
    }
}

/// Three-way partition of `buf[lo..hi]` around a median-of-3 pivot value.
/// Returns `(lt, gt)` such that `buf[lo..lt]` beats the pivot,
/// `buf[lt..gt]` equals it (at least one element), and the pivot beats
/// `buf[gt..hi]`.
fn partition3<T: GsknnScalar>(buf: &mut [Neighbor<T>], lo: usize, hi: usize) -> (usize, usize) {
    let mid = lo + (hi - lo) / 2;
    let pivot = {
        let mut v = [buf[lo], buf[mid], buf[hi - 1]];
        v.sort_unstable_by(Neighbor::cmp_dist_idx);
        v[1]
    };
    let mut lt = lo;
    let mut i = lo;
    let mut gt = hi;
    while i < gt {
        if buf[i].beats(&pivot) {
            buf.swap(lt, i);
            lt += 1;
            i += 1;
        } else if pivot.beats(&buf[i]) {
            gt -= 1;
            buf.swap(i, gt);
        } else {
            i += 1;
        }
    }
    debug_assert!(lt < gt, "equal block must be non-empty");
    (lt, gt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(d: f64, i: u32) -> Neighbor {
        Neighbor::new(d, i)
    }

    #[test]
    fn selects_k_smallest() {
        let mut buf: Vec<Neighbor> = [9.0, 2.0, 7.0, 1.0, 5.0, 3.0, 8.0, 4.0, 6.0, 0.0]
            .iter()
            .enumerate()
            .map(|(i, &d)| n(d, i as u32))
            .collect();
        let mut got = quickselect_k_smallest(&mut buf, 4);
        got.sort_unstable_by(Neighbor::cmp_dist_idx);
        let d: Vec<f64> = got.iter().map(|x| x.dist).collect();
        assert_eq!(d, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn k_equal_len_is_identity_set() {
        let mut buf = vec![n(2.0, 0), n(1.0, 1)];
        let got = quickselect_k_smallest(&mut buf, 2);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn update_keeps_sorted_k() {
        let list = vec![n(1.0, 0), n(4.0, 1), n(9.0, 2)];
        let cands = vec![n(2.0, 10), n(11.0, 11)];
        let got = quickselect_update(&list, &cands, 3);
        let d: Vec<f64> = got.iter().map(|x| x.dist).collect();
        assert_eq!(d, vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn update_ignores_sentinels_in_list() {
        let list = vec![n(1.0, 0), Neighbor::sentinel()];
        let got = quickselect_update(&list, &[n(0.5, 3)], 2);
        let d: Vec<f64> = got.iter().map(|x| x.dist).collect();
        assert_eq!(d, vec![0.5, 1.0]);
    }

    #[test]
    fn all_equal_distances() {
        let mut buf: Vec<Neighbor> = (0..50).map(|i| n(1.0, i as u32)).collect();
        let mut got = quickselect_k_smallest(&mut buf, 5);
        got.sort_unstable_by(Neighbor::cmp_dist_idx);
        // tie-break: the 5 smallest indices
        let ids: Vec<u32> = got.iter().map(|x| x.idx).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    proptest! {
        #[test]
        fn matches_sort(dists in prop::collection::vec(0.0f64..100.0, 1..400), k in 1usize..50) {
            let cands: Vec<Neighbor> =
                dists.iter().enumerate().map(|(i, &d)| n(d, i as u32)).collect();
            let mut buf = cands.clone();
            let mut got = quickselect_k_smallest(&mut buf, k);
            got.sort_unstable_by(Neighbor::cmp_dist_idx);
            let mut want = cands;
            want.sort_unstable_by(Neighbor::cmp_dist_idx);
            want.truncate(k);
            prop_assert_eq!(got, want);
        }

        #[test]
        fn partition3_invariant(dists in prop::collection::vec(0.0f64..10.0, 16..200)) {
            let mut buf: Vec<Neighbor> =
                dists.iter().enumerate().map(|(i, &d)| n(d, i as u32)).collect();
            let hi = buf.len();
            let (lt, gt) = partition3(&mut buf, 0, hi);
            prop_assert!(lt < gt && gt <= hi);
            let pivot = buf[lt];
            prop_assert!(buf[..lt].iter().all(|x| x.beats(&pivot)));
            prop_assert!(buf[lt..gt].iter().all(|x| !x.beats(&pivot) && !pivot.beats(x)));
            prop_assert!(buf[gt..].iter().all(|x| pivot.beats(x)));
        }
    }
}
