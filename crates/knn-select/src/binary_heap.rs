//! Array-backed binary max-heap with a bounded capacity `k`.
//!
//! This is the selection structure of §2.2 ("Maximum heap select"): the
//! root holds the current k-th nearest distance, a candidate that does not
//! beat the root is rejected with a single comparison (the O(n) best case),
//! and a candidate that does replaces the root and sifts down
//! (O(log k) worst case per accepted candidate).

use crate::Neighbor;
use gsknn_scalar::GsknnScalar;

/// Bounded binary max-heap of [`Neighbor`]s ordered by `(dist, idx)`.
///
/// While the heap holds fewer than `k` entries, [`BinaryMaxHeap::push`]
/// inserts unconditionally; once full it becomes a replace-root filter.
/// [`BinaryMaxHeap::threshold`] exposes the pruning bound the fused kernel
/// compares freshly computed distances against.
///
/// ```
/// use knn_select::{BinaryMaxHeap, Neighbor};
/// let mut heap = BinaryMaxHeap::new(2);
/// for (i, d) in [9.0, 1.0, 5.0, 3.0].iter().enumerate() {
///     heap.push(Neighbor::new(*d, i as u32));
/// }
/// let kept: Vec<f64> = heap.into_sorted_vec().iter().map(|n| n.dist).collect();
/// assert_eq!(kept, vec![1.0, 3.0]);
/// ```
#[derive(Clone, Debug)]
pub struct BinaryMaxHeap<T: GsknnScalar = f64> {
    k: usize,
    data: Vec<Neighbor<T>>,
}

impl<T: GsknnScalar> BinaryMaxHeap<T> {
    /// Empty heap with capacity `k`.
    pub fn new(k: usize) -> Self {
        BinaryMaxHeap {
            k,
            data: Vec::with_capacity(k),
        }
    }

    /// Build a heap from an existing *sorted or unsorted* row of at most
    /// `k` neighbors; sentinel (+∞) entries are dropped. Uses Floyd's O(k)
    /// bottom-up heapify.
    pub fn from_row(k: usize, row: &[Neighbor<T>]) -> Self {
        let mut data: Vec<Neighbor<T>> =
            row.iter().copied().filter(|n| n.dist.is_finite()).collect();
        assert!(data.len() <= k, "row longer than heap capacity");
        let mut heap = BinaryMaxHeap {
            k,
            data: Vec::new(),
        };
        // Floyd heapify: sift down every internal node from the last parent.
        let n = data.len();
        heap.data = std::mem::take(&mut data);
        if n > 1 {
            for i in (0..n / 2).rev() {
                heap.sift_down(i);
            }
        }
        heap
    }

    /// Capacity `k`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Current number of stored neighbors.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when no neighbors are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `true` once `k` neighbors are stored.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.data.len() == self.k
    }

    /// The pruning bound: the current worst kept distance when full,
    /// +∞ otherwise. A candidate with `dist >= threshold()` can only be
    /// accepted via the tie-break on index, and `dist > threshold()` never.
    #[inline(always)]
    pub fn threshold(&self) -> T {
        if self.k > 0 && self.is_full() {
            self.data[0].dist
        } else {
            T::INFINITY
        }
    }

    /// The current root (worst kept neighbor), if any.
    #[inline]
    pub fn root(&self) -> Option<Neighbor<T>> {
        self.data.first().copied()
    }

    /// Offer a candidate. Returns `true` if it was kept.
    #[inline]
    pub fn push(&mut self, cand: Neighbor<T>) -> bool {
        if self.k == 0 {
            return false;
        }
        if self.data.len() < self.k {
            self.data.push(cand);
            self.sift_up(self.data.len() - 1);
            true
        } else if cand.beats(&self.data[0]) {
            self.data[0] = cand;
            self.sift_down(0);
            true
        } else {
            false
        }
    }

    /// As [`BinaryMaxHeap::push`], but never stores the same reference id
    /// twice: a candidate whose `idx` is already present is dropped. Used
    /// when the heap was seeded from an existing neighbor list and the
    /// incoming candidate stream may re-visit stored neighbors (the
    /// iterated approximate solvers) — without the membership check a
    /// duplicate would evict a genuine k-th neighbor. O(k) scan, but only
    /// on candidates that pass the root filter.
    #[inline]
    pub fn push_unique(&mut self, cand: Neighbor<T>) -> bool {
        if self.k == 0 {
            return false;
        }
        if self.data.len() == self.k && !cand.beats(&self.data[0]) {
            return false;
        }
        if self.data.iter().any(|n| n.idx == cand.idx) {
            return false;
        }
        self.push(cand)
    }

    /// Drain into an ascending `(dist, idx)`-sorted vector.
    pub fn into_sorted_vec(mut self) -> Vec<Neighbor<T>> {
        self.data.sort_unstable_by(Neighbor::cmp_dist_idx);
        self.data
    }

    /// Empty the heap and set a new capacity, keeping the backing
    /// storage — observably identical to [`BinaryMaxHeap::new`] but
    /// allocation-free once the heap has grown to its largest `k`.
    pub fn reset(&mut self, k: usize) {
        self.k = k;
        self.data.clear();
    }

    /// Append the stored neighbors to `out` in ascending `(dist, idx)`
    /// order without consuming the heap — the reusable-workspace form of
    /// [`BinaryMaxHeap::into_sorted_vec`] (identical contents: both sort
    /// the same entry set with the same comparator).
    pub fn sorted_into(&self, out: &mut Vec<Neighbor<T>>) {
        let start = out.len();
        out.extend_from_slice(&self.data);
        out[start..].sort_unstable_by(Neighbor::cmp_dist_idx);
    }

    /// Borrowed view of the raw (heap-ordered) storage.
    pub fn as_slice(&self) -> &[Neighbor<T>] {
        &self.data
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.data[i].beats(&self.data[parent]) {
                break; // child smaller than parent: heap property holds
            }
            self.data.swap(i, parent);
            i = parent;
        }
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let n = self.data.len();
        loop {
            let l = 2 * i + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            // pick the larger child under (dist, idx) order
            let mut big = l;
            if r < n && self.data[l].beats(&self.data[r]) {
                big = r;
            }
            if self.data[big].beats(&self.data[i]) {
                break; // both children smaller: done
            }
            self.data.swap(i, big);
            i = big;
        }
    }

    /// Verify the max-heap invariant; used by tests and debug assertions.
    pub fn check_invariant(&self) -> bool {
        (1..self.data.len()).all(|i| {
            let parent = (i - 1) / 2;
            !self.data[parent].beats(&self.data[i])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(d: f64, i: u32) -> Neighbor {
        Neighbor::new(d, i)
    }

    #[test]
    fn keeps_k_smallest() {
        let mut h = BinaryMaxHeap::new(3);
        for (i, d) in [9.0, 2.0, 7.0, 1.0, 5.0, 3.0].iter().enumerate() {
            h.push(n(*d, i as u32));
            assert!(h.check_invariant());
        }
        let got: Vec<f64> = h.into_sorted_vec().iter().map(|x| x.dist).collect();
        assert_eq!(got, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn f32_heap_keeps_k_smallest() {
        let mut h = BinaryMaxHeap::<f32>::new(3);
        for (i, d) in [9.0f32, 2.0, 7.0, 1.0, 5.0, 3.0].iter().enumerate() {
            h.push(Neighbor::new(*d, i as u32));
            assert!(h.check_invariant());
        }
        assert_eq!(h.threshold(), 3.0f32);
        let got: Vec<f32> = h.into_sorted_vec().iter().map(|x| x.dist).collect();
        assert_eq!(got, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn threshold_is_inf_until_full() {
        let mut h = BinaryMaxHeap::new(2);
        assert_eq!(h.threshold(), f64::INFINITY);
        h.push(n(1.0, 0));
        assert_eq!(h.threshold(), f64::INFINITY);
        h.push(n(2.0, 1));
        assert_eq!(h.threshold(), 2.0);
        h.push(n(0.5, 2));
        assert_eq!(h.threshold(), 1.0);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut h = BinaryMaxHeap::new(0);
        assert!(!h.push(n(1.0, 0)));
        assert!(h.into_sorted_vec().is_empty());
    }

    #[test]
    fn reset_behaves_like_new() {
        let mut h = BinaryMaxHeap::new(3);
        for (i, d) in [9.0, 2.0, 7.0, 1.0].iter().enumerate() {
            h.push(n(*d, i as u32));
        }
        h.reset(2);
        assert_eq!(h.threshold(), f64::INFINITY);
        for (i, d) in [5.0, 3.0, 4.0].iter().enumerate() {
            h.push(n(*d, 10 + i as u32));
            assert!(h.check_invariant());
        }
        let got: Vec<f64> = h.into_sorted_vec().iter().map(|x| x.dist).collect();
        assert_eq!(got, vec![3.0, 4.0]);
    }

    #[test]
    fn sorted_into_matches_into_sorted_vec_and_appends() {
        let mut h = BinaryMaxHeap::new(4);
        for (i, d) in [9.0, 2.0, 7.0, 1.0, 5.0].iter().enumerate() {
            h.push(n(*d, i as u32));
        }
        let mut out = vec![n(-1.0, 99)];
        h.sorted_into(&mut out);
        assert_eq!(out[0], n(-1.0, 99), "existing entries untouched");
        assert_eq!(out[1..].to_vec(), h.into_sorted_vec());
    }

    #[test]
    fn tie_break_prefers_smaller_index() {
        let mut h = BinaryMaxHeap::new(1);
        h.push(n(1.0, 9));
        assert!(h.push(n(1.0, 3)), "equal dist, smaller idx must replace");
        assert!(!h.push(n(1.0, 5)), "equal dist, larger idx must not");
        assert_eq!(h.into_sorted_vec()[0].idx, 3);
    }

    #[test]
    fn from_row_heapifies() {
        let row = [n(1.0, 0), n(5.0, 1), n(3.0, 2), n(4.0, 3)];
        let h = BinaryMaxHeap::from_row(4, &row);
        assert!(h.check_invariant());
        assert_eq!(h.threshold(), 5.0);
    }

    #[test]
    fn from_row_drops_sentinels() {
        let row = [n(1.0, 0), Neighbor::sentinel(), n(3.0, 2)];
        let h = BinaryMaxHeap::from_row(3, &row);
        assert_eq!(h.len(), 2);
        assert_eq!(h.threshold(), f64::INFINITY); // not full yet
    }

    #[test]
    fn nan_candidates_never_evict_real_neighbors() {
        // A full heap rejects NaN (NaN beats nothing under `beats`); the
        // kernel boundary rejects NaN inputs, but the heap itself must
        // stay well-behaved if one slips through.
        let mut h = BinaryMaxHeap::new(2);
        h.push(n(1.0, 0));
        h.push(n(2.0, 1));
        assert!(!h.push(n(f64::NAN, 9)));
        assert!(h.check_invariant());
        let got = h.into_sorted_vec();
        assert_eq!(got.iter().map(|x| x.idx).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn nan_in_partial_heap_sorts_last_and_keeps_invariant() {
        // While not full, pushes are unconditional — a NaN is stored but
        // never breaks the heap invariant (it compares as "not beating"),
        // and total_cmp sorts it after every real distance on drain.
        let mut h = BinaryMaxHeap::new(4);
        h.push(n(f64::NAN, 7));
        h.push(n(5.0, 1));
        h.push(n(f64::INFINITY, 2));
        assert!(h.check_invariant());
        let got = h.into_sorted_vec();
        assert_eq!(got[0].idx, 1);
        assert_eq!(got[1].dist, f64::INFINITY);
        assert!(got[2].dist.is_nan());
    }

    #[test]
    fn infinity_candidates_behave_like_sentinels() {
        let mut h = BinaryMaxHeap::<f32>::new(2);
        h.push(Neighbor::new(f32::INFINITY, 5));
        h.push(Neighbor::new(1.0f32, 0));
        assert_eq!(h.threshold(), f32::INFINITY); // worst kept is +inf
        assert!(h.push(Neighbor::new(2.0f32, 1)), "finite beats +inf");
        let got = h.into_sorted_vec();
        assert_eq!(got.iter().map(|x| x.idx).collect::<Vec<_>>(), vec![0, 1]);
    }

    proptest! {
        #[test]
        fn matches_sort_truncate(dists in prop::collection::vec(0.0f64..100.0, 0..200), k in 0usize..20) {
            let cands: Vec<Neighbor> =
                dists.iter().enumerate().map(|(i, &d)| n(d, i as u32)).collect();
            let mut h = BinaryMaxHeap::new(k);
            for &c in &cands { h.push(c); }
            prop_assert!(h.check_invariant());
            let got = h.into_sorted_vec();
            let mut want = cands.clone();
            want.sort_unstable_by(Neighbor::cmp_dist_idx);
            want.truncate(k);
            prop_assert_eq!(got, want);
        }

        #[test]
        fn invariant_after_every_push(dists in prop::collection::vec(0.0f64..10.0, 1..100)) {
            let mut h = BinaryMaxHeap::new(7);
            for (i, &d) in dists.iter().enumerate() {
                h.push(n(d, i as u32));
                prop_assert!(h.check_invariant());
                prop_assert!(h.len() <= 7);
            }
        }

        #[test]
        fn from_row_equals_pushes(dists in prop::collection::vec(0.0f64..10.0, 0..16)) {
            let row: Vec<Neighbor> =
                dists.iter().enumerate().map(|(i, &d)| n(d, i as u32)).collect();
            let built = BinaryMaxHeap::from_row(16, &row);
            let mut pushed = BinaryMaxHeap::new(16);
            for &c in &row { pushed.push(c); }
            prop_assert!(built.check_invariant());
            prop_assert_eq!(built.into_sorted_vec(), pushed.into_sorted_vec());
        }

        #[test]
        fn f32_heap_agrees_with_f64_on_exact_values(
            dists in prop::collection::vec(0u16..1000, 0..100),
            k in 1usize..16,
        ) {
            // u16-derived distances are exactly representable in both
            // precisions, so the two heaps must keep identical index sets.
            let mut h64 = BinaryMaxHeap::<f64>::new(k);
            let mut h32 = BinaryMaxHeap::<f32>::new(k);
            for (i, &d) in dists.iter().enumerate() {
                h64.push(Neighbor::new(d as f64, i as u32));
                h32.push(Neighbor::new(d as f32, i as u32));
            }
            let i64s: Vec<u32> = h64.into_sorted_vec().iter().map(|x| x.idx).collect();
            let i32s: Vec<u32> = h32.into_sorted_vec().iter().map(|x| x.idx).collect();
            prop_assert_eq!(i64s, i32s);
        }
    }
}
