//! Compact binary serialization for [`NeighborTable`] — neighbor tables
//! for millions of points are expensive to recompute (the whole point of
//! the paper), so pipelines persist them between stages, and the serving
//! layer ships them over the wire as query responses.
//!
//! Format v2 (little-endian), generic over the element precision:
//!
//! ```text
//! magic     "GSNT"        4 bytes
//! version   u16           currently 2
//! precision u8            bytes per stored distance: 8 (f64) or 4 (f32)
//! m         u64           rows
//! k         u64           neighbors per row
//! rows      m·k × (f64|f32 dist, u32 idx)
//! ```
//!
//! Format v1 (the pre-precision layout: no precision byte, distances
//! always `f64`) is still decoded by [`NeighborTable::from_bytes`] for
//! any target precision — old persisted f64 tables keep working, and an
//! f32 reader narrows the stored distances.
//!
//! Sentinels round-trip exactly (dist = +∞, idx = `u32::MAX`).

use crate::{Neighbor, NeighborTable};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gsknn_scalar::GsknnScalar;

const MAGIC: &[u8; 4] = b"GSNT";
const VERSION: u16 = 2;

/// Why a buffer failed to decode.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong magic bytes — not a neighbor table.
    BadMagic,
    /// Unknown format version.
    BadVersion(u16),
    /// v2 header names a precision this build cannot represent losslessly
    /// in the requested element type (e.g. reading an f32 table as
    /// `NeighborTable<f64>` is fine; the stored byte width must still be
    /// one of 4/8).
    BadPrecision(u8),
    /// Buffer ended before the declared `m × k` rows.
    Truncated,
    /// A stored distance was NaN (tables never contain NaN).
    CorruptDistance,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a neighbor table (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::BadPrecision(b) => write!(f, "unsupported stored precision ({b} bytes)"),
            DecodeError::Truncated => write!(f, "buffer truncated"),
            DecodeError::CorruptDistance => write!(f, "NaN distance in stored table"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Write one distance at the precision of `T` (f32 tables store 4-byte
/// distances, everything else 8).
#[inline]
fn put_dist<T: GsknnScalar, B: BufMut>(buf: &mut B, v: T) {
    if T::BYTES == 4 {
        buf.put_f32_le(v.to_f64() as f32);
    } else {
        buf.put_f64_le(v.to_f64());
    }
}

/// Read one distance stored at `stored_bytes` width into `T`.
#[inline]
fn get_dist<T: GsknnScalar>(buf: &mut &[u8], stored_bytes: u8) -> T {
    let wide = if stored_bytes == 4 {
        buf.get_f32_le() as f64
    } else {
        buf.get_f64_le()
    };
    T::from_f64(wide)
}

impl<T: GsknnScalar> NeighborTable<T> {
    /// Serialize to the binary format above (always writes v2, stamping
    /// the table's element precision in the header).
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Exact byte length [`NeighborTable::encode_into`] appends.
    pub fn encoded_len(&self) -> usize {
        4 + 2 + 1 + 16 + self.len() * self.k() * (T::BYTES + 4)
    }

    /// Append the v2 encoding to an existing buffer — byte-identical to
    /// [`NeighborTable::to_bytes`], but reusing the caller's allocation
    /// (the serving hot path encodes into a per-connection output buffer
    /// that never reallocates at steady state).
    pub fn encode_into<B: BufMut>(&self, buf: &mut B) {
        let m = self.len();
        let k = self.k();
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u8(T::BYTES as u8);
        buf.put_u64_le(m as u64);
        buf.put_u64_le(k as u64);
        for i in 0..m {
            for nb in self.row(i) {
                put_dist(buf, nb.dist);
                buf.put_u32_le(nb.idx);
            }
        }
    }

    /// [`NeighborTable::encode_into`] with every real neighbor id shifted
    /// by `idx_offset` — how a partitioned backend stamps *global*
    /// reference ids into its reply without touching the table itself
    /// (the table holds partition-local ids; the partition's row offset
    /// is applied during the wire write, so the hot path still performs
    /// no allocation). Sentinel slots (`idx == u32::MAX`) are preserved
    /// untouched, and real ids saturate rather than wrap into the
    /// sentinel range on a (nonsensical) overflowing offset.
    pub fn encode_into_with_offset<B: BufMut>(&self, buf: &mut B, idx_offset: u32) {
        let m = self.len();
        let k = self.k();
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u8(T::BYTES as u8);
        buf.put_u64_le(m as u64);
        buf.put_u64_le(k as u64);
        for i in 0..m {
            for nb in self.row(i) {
                put_dist(buf, nb.dist);
                let idx = if nb.idx == u32::MAX {
                    u32::MAX
                } else {
                    nb.idx.saturating_add(idx_offset).min(u32::MAX - 1)
                };
                buf.put_u32_le(idx);
            }
        }
    }

    /// Decode a buffer produced by [`NeighborTable::to_bytes`] — v2 at
    /// either stored precision (distances are converted to `T`), or the
    /// legacy v1 f64-only layout.
    pub fn from_bytes(mut buf: &[u8]) -> Result<Self, DecodeError> {
        if buf.remaining() < 4 + 2 {
            return Err(DecodeError::Truncated);
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = buf.get_u16_le();
        let stored_bytes = match version {
            // v1 predates the precision byte; distances are f64
            1 => 8u8,
            2 => {
                if buf.remaining() < 1 {
                    return Err(DecodeError::Truncated);
                }
                let b = buf.get_u8();
                if b != 4 && b != 8 {
                    return Err(DecodeError::BadPrecision(b));
                }
                b
            }
            v => return Err(DecodeError::BadVersion(v)),
        };
        if buf.remaining() < 16 {
            return Err(DecodeError::Truncated);
        }
        let m = buf.get_u64_le() as usize;
        let k = buf.get_u64_le() as usize;
        let need = m
            .checked_mul(k)
            .and_then(|v| v.checked_mul(stored_bytes as usize + 4))
            .ok_or(DecodeError::Truncated)?;
        if buf.remaining() < need {
            return Err(DecodeError::Truncated);
        }
        let mut table = NeighborTable::new(m, k);
        let mut row = Vec::with_capacity(k);
        for i in 0..m {
            row.clear();
            let mut real = 0usize;
            for _ in 0..k {
                let dist: T = get_dist(&mut buf, stored_bytes);
                let idx = buf.get_u32_le();
                if dist.is_nan() {
                    return Err(DecodeError::CorruptDistance);
                }
                if dist.is_finite() {
                    real += 1;
                }
                row.push(Neighbor { dist, idx });
            }
            // rows are stored sorted with sentinels trailing; re-assert
            // via set_row (which sentinel-pads the tail)
            table.set_row(i, &row[..real]);
        }
        Ok(table)
    }
}

/// Byte length of the encoded table at the head of `buf` without
/// decoding it — header sniffing for protocols that append trailing
/// data after the table (e.g. the serving layer's span annex). `None`
/// if the head is not a structurally plausible v1/v2 table (bad magic,
/// truncated header, overflowing `m × k`, or fewer bytes than the
/// declared rows). All arithmetic is checked; arbitrary bytes never
/// panic.
pub fn encoded_len_of(buf: &[u8]) -> Option<usize> {
    if buf.len() < 4 + 2 || &buf[..4] != MAGIC {
        return None;
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    let (stored_bytes, header_len) = match version {
        1 => (8usize, 4 + 2 + 16),
        2 => {
            if buf.len() < 7 {
                return None;
            }
            let b = buf[6] as usize;
            if b != 4 && b != 8 {
                return None;
            }
            (b, 4 + 2 + 1 + 16)
        }
        _ => return None,
    };
    if buf.len() < header_len {
        return None;
    }
    let dims = &buf[header_len - 16..header_len];
    let m = u64::from_le_bytes(dims[..8].try_into().unwrap()) as usize;
    let k = u64::from_le_bytes(dims[8..].try_into().unwrap()) as usize;
    let rows = m.checked_mul(k)?.checked_mul(stored_bytes + 4)?;
    let total = header_len.checked_add(rows)?;
    if buf.len() < total {
        return None;
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NeighborTable {
        let mut t = NeighborTable::new(3, 2);
        t.set_row(0, &[Neighbor::new(0.25, 7), Neighbor::new(1.5, 3)]);
        t.set_row(1, &[Neighbor::new(0.125, 9)]); // partial row: one sentinel
        t
    }

    fn sample_f32() -> NeighborTable<f32> {
        let mut t = NeighborTable::<f32>::new(2, 3);
        t.set_row(
            0,
            &[
                Neighbor::new(0.5f32, 2),
                Neighbor::new(0.75, 11),
                Neighbor::new(2.0, 1),
            ],
        );
        t.set_row(1, &[Neighbor::new(0.0625f32, 4)]);
        t
    }

    /// The legacy v1 encoding (no precision byte, f64 rows), for reader
    /// compatibility tests.
    fn encode_v1(t: &NeighborTable) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(1);
        buf.put_u64_le(t.len() as u64);
        buf.put_u64_le(t.k() as u64);
        for i in 0..t.len() {
            for nb in t.row(i) {
                buf.put_f64_le(nb.dist);
                buf.put_u32_le(nb.idx);
            }
        }
        buf
    }

    #[test]
    fn round_trip_exact() {
        let t = sample();
        let bytes = t.to_bytes();
        let back = NeighborTable::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.k(), 2);
        for i in 0..3 {
            assert_eq!(back.row(i), t.row(i), "row {i}");
        }
    }

    #[test]
    fn f32_round_trip_exact() {
        let t = sample_f32();
        let bytes = t.to_bytes();
        // header carries the 4-byte precision tag
        assert_eq!(bytes[6], 4);
        let back = NeighborTable::<f32>::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.k(), 3);
        for i in 0..2 {
            assert_eq!(back.row(i), t.row(i), "row {i}");
        }
    }

    #[test]
    fn f32_payload_widens_into_f64_reader() {
        let bytes = sample_f32().to_bytes();
        let wide = NeighborTable::<f64>::from_bytes(&bytes).unwrap();
        assert_eq!(wide.row(0)[1].idx, 11);
        assert_eq!(wide.row(0)[1].dist, 0.75);
        assert_eq!(wide.row(1)[1], Neighbor::sentinel());
    }

    #[test]
    fn legacy_v1_payload_still_decodes() {
        let t = sample();
        let v1 = encode_v1(&t);
        let back = NeighborTable::<f64>::from_bytes(&v1).unwrap();
        for i in 0..3 {
            assert_eq!(back.row(i), t.row(i), "row {i}");
        }
        // and narrows into an f32 reader (exact here: the sample
        // distances are all dyadic)
        let narrow = NeighborTable::<f32>::from_bytes(&v1).unwrap();
        assert_eq!(narrow.row(0)[0].dist, 0.25f32);
        assert_eq!(narrow.row(0)[0].idx, 7);
    }

    #[test]
    fn encode_into_matches_to_bytes() {
        let t = sample();
        let mut out = Vec::with_capacity(t.encoded_len());
        out.extend_from_slice(b"prefix"); // appends, never truncates
        t.encode_into(&mut out);
        assert_eq!(&out[..6], b"prefix");
        assert_eq!(&out[6..], &t.to_bytes()[..]);
        assert_eq!(out.len() - 6, t.encoded_len());

        let t32 = sample_f32();
        let mut out32 = Vec::new();
        t32.encode_into(&mut out32);
        assert_eq!(&out32[..], &t32.to_bytes()[..]);
        assert_eq!(out32.len(), t32.encoded_len());
    }

    #[test]
    fn offset_encoding_shifts_real_ids_and_preserves_sentinels() {
        let t = sample(); // row 1 has one real entry + one sentinel
        let mut out = Vec::new();
        t.encode_into_with_offset(&mut out, 1000);
        let back = NeighborTable::<f64>::from_bytes(&out).unwrap();
        assert_eq!(back.row(0)[0].idx, 1007);
        assert_eq!(back.row(0)[1].idx, 1003);
        assert_eq!(back.row(1)[0].idx, 1009);
        assert_eq!(back.row(1)[1], Neighbor::sentinel(), "sentinel untouched");
        // distances are byte-identical to the unshifted encoding
        for i in 0..t.len() {
            for (a, b) in back.row(i).iter().zip(t.row(i)) {
                assert_eq!(a.dist.to_bits(), b.dist.to_bits());
            }
        }
        // offset 0 is byte-identical to the plain encoder
        let mut zero = Vec::new();
        t.encode_into_with_offset(&mut zero, 0);
        assert_eq!(&zero[..], &t.to_bytes()[..]);
    }

    #[test]
    fn empty_table_round_trips() {
        let t = NeighborTable::<f64>::new(0, 5);
        let back = NeighborTable::<f64>::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(back.len(), 0);
        assert_eq!(back.k(), 5);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes().to_vec();
        bytes[0] = b'X';
        assert_eq!(
            NeighborTable::<f64>::from_bytes(&bytes).unwrap_err(),
            DecodeError::BadMagic
        );
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = sample().to_bytes().to_vec();
        bytes[4] = 9;
        assert_eq!(
            NeighborTable::<f64>::from_bytes(&bytes).unwrap_err(),
            DecodeError::BadVersion(9)
        );
    }

    #[test]
    fn wrong_precision_byte_rejected() {
        let mut bytes = sample().to_bytes().to_vec();
        bytes[6] = 2; // not 4 or 8
        assert_eq!(
            NeighborTable::<f64>::from_bytes(&bytes).unwrap_err(),
            DecodeError::BadPrecision(2)
        );
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().to_bytes();
        for cut in [0usize, 3, 6, 10, bytes.len() - 1] {
            assert_eq!(
                NeighborTable::<f64>::from_bytes(&bytes[..cut]).unwrap_err(),
                DecodeError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn nan_distance_rejected() {
        let mut bytes = sample().to_bytes().to_vec();
        // overwrite the first row's first dist (offset 23: 4 magic +
        // 2 version + 1 precision + 16 header) with NaN
        bytes[23..31].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(
            NeighborTable::<f64>::from_bytes(&bytes).unwrap_err(),
            DecodeError::CorruptDistance
        );
    }

    #[test]
    fn encoded_len_of_splits_table_from_trailing_bytes() {
        for bytes in [sample().to_bytes().to_vec(), encode_v1(&sample())] {
            assert_eq!(encoded_len_of(&bytes), Some(bytes.len()));
            let mut with_tail = bytes.clone();
            with_tail.extend_from_slice(b"span annex trails here");
            assert_eq!(encoded_len_of(&with_tail), Some(bytes.len()));
        }
        // f32 tables too
        let f32_bytes = sample_f32().to_bytes().to_vec();
        assert_eq!(encoded_len_of(&f32_bytes), Some(f32_bytes.len()));
        // structurally bad heads yield None, never a panic
        assert_eq!(encoded_len_of(b""), None);
        assert_eq!(encoded_len_of(b"XXXXXX"), None);
        let bytes = sample().to_bytes();
        assert_eq!(encoded_len_of(&bytes[..bytes.len() - 1]), None);
        let mut bad_prec = bytes.to_vec();
        bad_prec[6] = 2;
        assert_eq!(encoded_len_of(&bad_prec), None);
        let mut huge = Vec::new();
        huge.extend_from_slice(b"GSNT");
        huge.extend_from_slice(&2u16.to_le_bytes());
        huge.push(8);
        huge.extend_from_slice(&u64::MAX.to_le_bytes());
        huge.extend_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(encoded_len_of(&huge), None);
    }

    #[test]
    fn oversized_header_does_not_overflow() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"GSNT");
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.push(8);
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // m
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // k
        assert_eq!(
            NeighborTable::<f64>::from_bytes(&buf).unwrap_err(),
            DecodeError::Truncated
        );
    }
}
