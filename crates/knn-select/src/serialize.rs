//! Compact binary serialization for [`NeighborTable`] — neighbor tables
//! for millions of points are expensive to recompute (the whole point of
//! the paper), so pipelines persist them between stages.
//!
//! Format (little-endian):
//!
//! ```text
//! magic  "GSNT"          4 bytes
//! version u16            currently 1
//! m       u64            rows
//! k       u64            neighbors per row
//! rows    m·k × (f64 dist, u32 idx)
//! ```
//!
//! Sentinels round-trip exactly (dist = +∞, idx = `u32::MAX`).

use crate::{Neighbor, NeighborTable};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"GSNT";
const VERSION: u16 = 1;

/// Why a buffer failed to decode.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong magic bytes — not a neighbor table.
    BadMagic,
    /// Unknown format version.
    BadVersion(u16),
    /// Buffer ended before the declared `m × k` rows.
    Truncated,
    /// A stored distance was NaN (tables never contain NaN).
    CorruptDistance,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a neighbor table (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::Truncated => write!(f, "buffer truncated"),
            DecodeError::CorruptDistance => write!(f, "NaN distance in stored table"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl NeighborTable {
    /// Serialize to the binary format above.
    pub fn to_bytes(&self) -> Bytes {
        let m = self.len();
        let k = self.k();
        let mut buf = BytesMut::with_capacity(4 + 2 + 16 + m * k * 12);
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u64_le(m as u64);
        buf.put_u64_le(k as u64);
        for i in 0..m {
            for nb in self.row(i) {
                buf.put_f64_le(nb.dist);
                buf.put_u32_le(nb.idx);
            }
        }
        buf.freeze()
    }

    /// Decode a buffer produced by [`NeighborTable::to_bytes`].
    pub fn from_bytes(mut buf: &[u8]) -> Result<Self, DecodeError> {
        if buf.remaining() < 4 + 2 + 16 {
            return Err(DecodeError::Truncated);
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let m = buf.get_u64_le() as usize;
        let k = buf.get_u64_le() as usize;
        let need = m
            .checked_mul(k)
            .and_then(|v| v.checked_mul(12))
            .ok_or(DecodeError::Truncated)?;
        if buf.remaining() < need {
            return Err(DecodeError::Truncated);
        }
        let mut table = NeighborTable::new(m, k);
        let mut row = Vec::with_capacity(k);
        for i in 0..m {
            row.clear();
            let mut real = 0usize;
            for _ in 0..k {
                let dist = buf.get_f64_le();
                let idx = buf.get_u32_le();
                if dist.is_nan() {
                    return Err(DecodeError::CorruptDistance);
                }
                if dist.is_finite() {
                    real += 1;
                }
                row.push(Neighbor { dist, idx });
            }
            // rows are stored sorted with sentinels trailing; re-assert
            // via set_row (which sentinel-pads the tail)
            table.set_row(i, &row[..real]);
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NeighborTable {
        let mut t = NeighborTable::new(3, 2);
        t.set_row(0, &[Neighbor::new(0.25, 7), Neighbor::new(1.5, 3)]);
        t.set_row(1, &[Neighbor::new(0.125, 9)]); // partial row: one sentinel
        t
    }

    #[test]
    fn round_trip_exact() {
        let t = sample();
        let bytes = t.to_bytes();
        let back = NeighborTable::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.k(), 2);
        for i in 0..3 {
            assert_eq!(back.row(i), t.row(i), "row {i}");
        }
    }

    #[test]
    fn empty_table_round_trips() {
        let t = NeighborTable::new(0, 5);
        let back = NeighborTable::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(back.len(), 0);
        assert_eq!(back.k(), 5);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes().to_vec();
        bytes[0] = b'X';
        assert_eq!(
            NeighborTable::from_bytes(&bytes).unwrap_err(),
            DecodeError::BadMagic
        );
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = sample().to_bytes().to_vec();
        bytes[4] = 9;
        assert_eq!(
            NeighborTable::from_bytes(&bytes).unwrap_err(),
            DecodeError::BadVersion(9)
        );
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().to_bytes();
        for cut in [0usize, 3, 10, bytes.len() - 1] {
            assert_eq!(
                NeighborTable::from_bytes(&bytes[..cut]).unwrap_err(),
                DecodeError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn nan_distance_rejected() {
        let mut bytes = sample().to_bytes().to_vec();
        // overwrite the first row's first dist (offset 22) with NaN
        bytes[22..30].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(
            NeighborTable::from_bytes(&bytes).unwrap_err(),
            DecodeError::CorruptDistance
        );
    }

    #[test]
    fn oversized_header_does_not_overflow() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"GSNT");
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // m
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // k
        assert_eq!(
            NeighborTable::from_bytes(&buf).unwrap_err(),
            DecodeError::Truncated
        );
    }
}
