//! # gsknn-faults — deterministic fault injection for the GSKNN stack
//!
//! Production ANN services treat fault containment as a first-class,
//! *tested* property: a panicking worker, a garbage frame or a poisoned
//! workspace must never take the service down, and the only way to keep
//! that true is to be able to produce those faults on demand. This crate
//! provides the substrate: named **injection points** threaded through
//! the kernel (`gsknn-core`: packing, micro-kernel dispatch, heap
//! selection) and the serving layer (`gsknn-serve`: frame decode,
//! coalescer flush, batch execution), armed from a seeded [`FaultPlan`]
//! so every chaos run is reproducible bit-for-bit.
//!
//! ## Zero overhead when off
//!
//! Everything is gated behind the `faults` cargo feature. Host crates
//! forward their own `faults` feature here and call the
//! [`fail_point!`] macro, which expands to **nothing** when the host is
//! built without the feature — no branch, no atomic, no registry, no
//! code. The hard acceptance bar is that a `faults`-off build is
//! byte-for-byte indistinguishable from one that never heard of this
//! crate.
//!
//! ## Determinism
//!
//! Each injection point keeps a hit counter; whether hit number `h`
//! fires is a pure function `mix(seed, point, h)` of the plan's seed
//! (probability mode) or an exact match (`Nth` mode). The *set* of
//! firing hit numbers is therefore deterministic for a given seed; which
//! thread experiences a given hit is a scheduling question, which is
//! exactly the nondeterminism a chaos harness wants to keep.
//!
//! ```
//! use gsknn_faults::{FaultPoint, FaultPlan, Mode};
//!
//! // Arm the 3rd batch execution to panic, and ~10% of frame decodes
//! // to hand the decoder corrupted bytes.
//! gsknn_faults::configure(
//!     FaultPlan::new(42)
//!         .with(FaultPoint::BatchExec, Mode::Nth(3))
//!         .with(FaultPoint::FrameDecode, Mode::Probability(0.1)),
//! );
//! # #[cfg(feature = "faults")]
//! # assert!(!gsknn_faults::armed(FaultPoint::PackR));
//! gsknn_faults::clear();
//! ```

/// A named place in the stack where a fault can be injected.
///
/// The enum is available with or without the `faults` feature so host
/// code can name points unconditionally; only the machinery that arms
/// them is feature-gated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// `gsknn-core`: gather-packing of a reference panel.
    PackR,
    /// `gsknn-core`: gather-packing of a query panel.
    PackQ,
    /// `gsknn-core`: rank-dc micro-kernel dispatch (one tile).
    MicroKernel,
    /// `gsknn-core`: fused heap-selection epilogue.
    HeapSelect,
    /// `gsknn-serve`: a request frame about to be decoded (the fault
    /// hands the decoder corrupted bytes rather than panicking).
    FrameDecode,
    /// `gsknn-serve`: the coalescer's flush decision (the fault forces a
    /// premature deadline flush).
    CoalesceFlush,
    /// `gsknn-serve`: a lane worker executing a flushed batch (the fault
    /// panics mid-batch, exercising supervision).
    BatchExec,
}

impl FaultPoint {
    /// Every injection point, for iteration in tests and reports.
    pub const ALL: [FaultPoint; 7] = [
        FaultPoint::PackR,
        FaultPoint::PackQ,
        FaultPoint::MicroKernel,
        FaultPoint::HeapSelect,
        FaultPoint::FrameDecode,
        FaultPoint::CoalesceFlush,
        FaultPoint::BatchExec,
    ];

    /// Stable small integer id (indexes the per-point counters and
    /// perturbs the PRNG stream so points never share a sequence).
    pub fn id(self) -> usize {
        match self {
            FaultPoint::PackR => 0,
            FaultPoint::PackQ => 1,
            FaultPoint::MicroKernel => 2,
            FaultPoint::HeapSelect => 3,
            FaultPoint::FrameDecode => 4,
            FaultPoint::CoalesceFlush => 5,
            FaultPoint::BatchExec => 6,
        }
    }

    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::PackR => "pack-r",
            FaultPoint::PackQ => "pack-q",
            FaultPoint::MicroKernel => "micro-kernel",
            FaultPoint::HeapSelect => "heap-select",
            FaultPoint::FrameDecode => "frame-decode",
            FaultPoint::CoalesceFlush => "coalesce-flush",
            FaultPoint::BatchExec => "batch-exec",
        }
    }
}

/// When an armed point fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Mode {
    /// Fire on each hit independently with this probability, decided by
    /// a pure function of `(seed, point, hit_number)` — the firing set
    /// is fixed per seed.
    Probability(f64),
    /// Fire exactly once, on the `n`-th hit (1-based).
    Nth(u64),
    /// Fire on every hit.
    Always,
}

/// A seeded set of armed injection points.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed mixed into every probability decision.
    pub seed: u64,
    /// `(point, mode)` rules; at most one rule per point (last wins).
    pub rules: Vec<(FaultPoint, Mode)>,
}

impl FaultPlan {
    /// An empty plan (nothing armed) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Arm `point` with `mode` (replacing any earlier rule for it).
    pub fn with(mut self, point: FaultPoint, mode: Mode) -> Self {
        self.rules.retain(|(p, _)| *p != point);
        self.rules.push((point, mode));
        self
    }
}

#[cfg(feature = "faults")]
mod armed_impl {
    use super::{FaultPlan, FaultPoint, Mode};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::RwLock;

    const N_POINTS: usize = FaultPoint::ALL.len();

    struct Registry {
        plan: RwLock<FaultPlan>,
        hits: [AtomicU64; N_POINTS],
        fired: [AtomicU64; N_POINTS],
    }

    static REGISTRY: Registry = Registry {
        plan: RwLock::new(FaultPlan {
            seed: 0,
            rules: Vec::new(),
        }),
        hits: [const { AtomicU64::new(0) }; N_POINTS],
        fired: [const { AtomicU64::new(0) }; N_POINTS],
    };

    /// SplitMix64 finalizer over (seed, point, hit) — a pure, well-mixed
    /// decision function.
    fn mix(seed: u64, point: usize, hit: u64) -> u64 {
        let mut z = seed
            .wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(point as u64 + 1))
            .wrapping_add(hit.wrapping_mul(0xbf58476d1ce4e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Install `plan`, resetting all hit/fired counters.
    pub fn configure(plan: FaultPlan) {
        let mut guard = REGISTRY.plan.write().unwrap();
        for i in 0..N_POINTS {
            REGISTRY.hits[i].store(0, Ordering::SeqCst);
            REGISTRY.fired[i].store(0, Ordering::SeqCst);
        }
        *guard = plan;
    }

    /// Disarm everything (counters reset too).
    pub fn clear() {
        configure(FaultPlan::default());
    }

    /// Record one hit at `point` and decide whether the fault fires.
    pub fn armed(point: FaultPoint) -> bool {
        let id = point.id();
        let hit = REGISTRY.hits[id].fetch_add(1, Ordering::SeqCst) + 1;
        let plan = REGISTRY.plan.read().unwrap();
        let Some((_, mode)) = plan.rules.iter().find(|(p, _)| *p == point) else {
            return false;
        };
        let fire = match *mode {
            Mode::Always => true,
            Mode::Nth(n) => hit == n,
            Mode::Probability(p) => {
                // compare the top 53 bits against p as a dyadic fraction
                let u = (mix(plan.seed, id, hit) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                u < p
            }
        };
        if fire {
            REGISTRY.fired[id].fetch_add(1, Ordering::SeqCst);
        }
        fire
    }

    /// Total hits recorded at `point` since the last `configure`.
    pub fn hits(point: FaultPoint) -> u64 {
        REGISTRY.hits[point.id()].load(Ordering::SeqCst)
    }

    /// Total faults fired at `point` since the last `configure`.
    pub fn fired(point: FaultPoint) -> u64 {
        REGISTRY.fired[point.id()].load(Ordering::SeqCst)
    }

    /// Record a hit and panic with a recognizable message if it fires —
    /// the body of [`crate::fail_point!`].
    #[inline]
    pub fn maybe_fail(point: FaultPoint) {
        if armed(point) {
            panic!("injected fault: {}", point.name());
        }
    }
}

#[cfg(feature = "faults")]
pub use armed_impl::{armed, clear, configure, fired, hits, maybe_fail};

// Without the feature, configure/clear remain callable no-ops so test
// setup code does not need its own cfg gates; the decision functions are
// absent on purpose — nothing should consult them in production builds.
#[cfg(not(feature = "faults"))]
mod noop_impl {
    use super::FaultPlan;

    /// No-op: the `faults` feature is off, nothing can be armed.
    pub fn configure(_plan: FaultPlan) {}

    /// No-op: the `faults` feature is off.
    pub fn clear() {}
}

#[cfg(not(feature = "faults"))]
pub use noop_impl::{clear, configure};

/// Panic-style injection point. With the *host crate's* `faults` feature
/// on (forwarded to `gsknn-faults/faults`), records a hit and panics
/// with `"injected fault: <name>"` when the active plan says so; with
/// the feature off it expands to nothing at all.
#[macro_export]
macro_rules! fail_point {
    ($point:expr) => {{
        #[cfg(feature = "faults")]
        $crate::maybe_fail($point);
    }};
}

#[cfg(all(test, feature = "faults"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    // The registry is process-global; serialize tests that touch it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn unarmed_points_never_fire() {
        let _g = guard();
        configure(FaultPlan::new(1).with(FaultPoint::PackR, Mode::Always));
        for _ in 0..100 {
            assert!(!armed(FaultPoint::PackQ));
        }
        assert_eq!(hits(FaultPoint::PackQ), 100);
        assert_eq!(fired(FaultPoint::PackQ), 0);
        clear();
    }

    #[test]
    fn nth_fires_exactly_once() {
        let _g = guard();
        configure(FaultPlan::new(7).with(FaultPoint::BatchExec, Mode::Nth(3)));
        let fired_at: Vec<u64> = (1..=10)
            .filter(|_| armed(FaultPoint::BatchExec))
            .collect::<Vec<_>>();
        assert_eq!(fired_at.len(), 1);
        assert_eq!(hits(FaultPoint::BatchExec), 10);
        assert_eq!(fired(FaultPoint::BatchExec), 1);
        clear();
    }

    #[test]
    fn probability_stream_is_deterministic_per_seed() {
        let _g = guard();
        let run = |seed| {
            configure(FaultPlan::new(seed).with(FaultPoint::FrameDecode, Mode::Probability(0.3)));
            let v: Vec<bool> = (0..200).map(|_| armed(FaultPoint::FrameDecode)).collect();
            clear();
            v
        };
        let a = run(11);
        let b = run(11);
        let c = run(12);
        assert_eq!(a, b, "same seed, same firing set");
        assert_ne!(a, c, "different seed should differ somewhere");
        let rate = a.iter().filter(|&&f| f).count() as f64 / a.len() as f64;
        assert!((0.1..0.5).contains(&rate), "rate {rate} far from 0.3");
    }

    #[test]
    fn fail_point_panics_with_recognizable_message() {
        let _g = guard();
        configure(FaultPlan::new(1).with(FaultPoint::HeapSelect, Mode::Always));
        let err = std::panic::catch_unwind(|| {
            fail_point!(FaultPoint::HeapSelect);
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected fault: heap-select"), "{msg}");
        clear();
    }

    #[test]
    fn reconfigure_resets_counters() {
        let _g = guard();
        configure(FaultPlan::new(1));
        let _ = armed(FaultPoint::PackR);
        assert_eq!(hits(FaultPoint::PackR), 1);
        configure(FaultPlan::new(2));
        assert_eq!(hits(FaultPoint::PackR), 0);
        clear();
    }
}
