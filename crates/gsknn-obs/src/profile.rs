//! The profiler: run a problem under both candidate variants, join the
//! measured phase breakdown against the §2.6 model's itemized terms, and
//! judge the model's variant choice empirically.

use crate::report::{phase_rows, DriftRow, ProfileReport, VariantTiming};
use dataset::{DistanceKind, PointSet};
use gsknn_core::buffers::KernelStats;
use gsknn_core::model::Approach;
use gsknn_core::obs::{Phase, PhaseSet};
use gsknn_core::{FusedScalar, Gsknn, GsknnConfig, MachineParams, Model, ProblemSize, Variant};
use std::time::Instant;

fn term(terms: &[(&'static str, f64)], name: &str) -> Option<f64> {
    terms.iter().find(|(t, _)| *t == name).map(|&(_, v)| v)
}

/// Join the §2.6 model terms against the measured phases, component by
/// component. The compute time `Tf + To` has no memory term of its own,
/// so it folds into the rank-dc component (the phase that executes it).
fn drift_join(
    model: &Model,
    ps: &ProblemSize,
    approach: Approach,
    phases: &PhaseSet,
) -> Vec<DriftRow> {
    let terms = model.tm_terms(ps, approach);
    let compute = model.t_compute(ps);
    let mut rows = Vec::new();

    let mut push = |component: &'static str,
                    named: &[&str],
                    extra: f64,
                    extra_name: Option<&str>,
                    phase: Phase| {
        let mut sum = extra;
        let mut joined: Vec<String> = extra_name.iter().map(|s| s.to_string()).collect();
        for name in named {
            if let Some(v) = term(&terms, name) {
                sum += v;
                joined.push(name.to_string());
            }
        }
        rows.push(DriftRow {
            component,
            terms: joined,
            predicted: sum,
            measured: phases.seconds(phase),
        });
    };

    push("gather-pack R", &["pack Rc + R2c"], 0.0, None, Phase::PackR);
    push(
        "gather-pack Q",
        &["pack Qc + Qc2 (per jc block)"],
        0.0,
        None,
        Phase::PackQ,
    );
    push(
        "rank-dc + C traffic",
        &["Cc rank-dc spill", "store C"],
        compute,
        Some("compute (Tf + To)"),
        Phase::RankDc,
    );
    push(
        "selection",
        &[
            "heap (binary, random access)",
            "heap (4-ary, cache-line access)",
        ],
        0.0,
        None,
        Phase::Select,
    );
    push("writeback (unmodeled)", &[], 0.0, None, Phase::Writeback);
    rows
}

/// Profile one kNN problem: time Var#1 and Var#6 (`reps` repetitions
/// each, best kept), read the phase breakdown and kernel counters of the
/// model-chosen variant, and join everything against the model. Generic
/// over the element type: for `f32` the machine constants are rescaled
/// (`MachineParams::for_scalar`) so the drift join compares against the
/// doubled-lane predictions, and the blocking comes from
/// [`GsknnConfig::for_scalar`].
pub fn profile_run<T: FusedScalar>(
    x: &PointSet<T>,
    q_idx: &[usize],
    r_idx: &[usize],
    k: usize,
    kind: DistanceKind,
    machine: MachineParams,
    reps: usize,
) -> ProfileReport {
    let reps = reps.max(1);
    let ps = ProblemSize {
        m: q_idx.len(),
        n: r_idx.len(),
        d: x.dim(),
        k,
    };
    let model = Model::new(machine.for_scalar::<T>());

    let candidates = [
        (Variant::Var1, Approach::Var1),
        (Variant::Var6, Approach::Var6),
    ];
    let mut variants = Vec::new();
    let mut observed: Vec<(PhaseSet, KernelStats)> = Vec::new();
    for (variant, approach) in candidates {
        let mut exec: Gsknn<T> = Gsknn::new(GsknnConfig {
            variant,
            ..GsknnConfig::for_scalar::<T>()
        });
        let mut best = f64::INFINITY;
        let mut phases = PhaseSet::new();
        let mut stats = KernelStats::default();
        for _ in 0..reps {
            let t0 = Instant::now();
            let _ = exec.run(x, q_idx, r_idx, k, kind);
            let secs = t0.elapsed().as_secs_f64();
            if secs < best {
                best = secs;
                phases = exec.last_phases();
                stats = exec.last_stats();
            }
        }
        variants.push(VariantTiming {
            variant: variant.name().to_string(),
            predicted: model.predict(&ps, approach),
            measured: best,
        });
        observed.push((phases, stats));
    }

    let predicted_variant = model.choose_variant(&ps);
    let chosen = if predicted_variant == Variant::Var6 {
        1
    } else {
        0
    };
    let empirical = if variants[0].measured <= variants[1].measured {
        0
    } else {
        1
    };
    let (phases, stats) = observed[chosen];
    let approach = candidates[chosen].1;
    let measured_total = variants[chosen].measured;
    let predicted_total = variants[chosen].predicted;

    ProfileReport {
        m: ps.m,
        n: ps.n,
        d: ps.d,
        k: ps.k,
        precision: T::NAME,
        kind: kind.name().to_string(),
        reps,
        obs_enabled: gsknn_core::obs::enabled(),
        variant_predicted: variants[chosen].variant.clone(),
        variant_empirical: variants[empirical].variant.clone(),
        model_choice_correct: chosen == empirical,
        measured_total,
        predicted_total,
        measured_gflops: model.flops(&ps) / measured_total / 1e9,
        predicted_gflops: model.gflops(&ps, approach),
        phases: phase_rows(&phases),
        drift: drift_join(&model, &ps, approach, &phases),
        variants,
        stats,
    }
}

/// [`profile_run`] on a synthetic uniform problem: `max(m, n)` points in
/// `d` dimensions, queries `0..m`, references `0..n`. The data is drawn
/// in `f64` and cast, so both precisions profile the same point set.
#[allow(clippy::too_many_arguments)] // flat mirror of the CLI flag list
pub fn profile_synthetic<T: FusedScalar>(
    m: usize,
    n: usize,
    d: usize,
    k: usize,
    seed: u64,
    kind: DistanceKind,
    machine: MachineParams,
    reps: usize,
) -> ProfileReport {
    let x = dataset::uniform(m.max(n).max(1), d, seed).cast::<T>();
    let q_idx: Vec<usize> = (0..m).collect();
    let r_idx: Vec<usize> = (0..n).collect();
    profile_run(&x, &q_idx, &r_idx, k, kind, machine, reps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_report() -> ProfileReport {
        profile_synthetic::<f64>(
            96,
            256,
            16,
            8,
            7,
            DistanceKind::SqL2,
            MachineParams::ivy_bridge_1core(),
            2,
        )
    }

    #[test]
    fn report_covers_both_variants_and_all_phases() {
        let r = small_report();
        assert_eq!(r.variants.len(), 2);
        assert!(r.variants.iter().all(|v| v.predicted > 0.0));
        assert!(r.variants.iter().all(|v| v.measured > 0.0));
        assert_eq!(r.phases.len(), gsknn_core::obs::PHASE_COUNT);
        assert_eq!(r.drift.len(), 5);
        assert!(r.measured_gflops > 0.0);
        assert!(r.predicted_gflops > 0.0);
        assert!(r.stats.tiles > 0);
        // the model-chosen variant is one of the two candidates
        assert!(r.variants.iter().any(|v| v.variant == r.variant_predicted));
        assert!(r.variants.iter().any(|v| v.variant == r.variant_empirical));
        assert_eq!(
            r.model_choice_correct,
            r.variant_predicted == r.variant_empirical
        );
    }

    #[test]
    fn drift_rows_join_actual_model_terms() {
        let r = small_report();
        let model = Model::new(MachineParams::ivy_bridge_1core());
        let ps = ProblemSize {
            m: 96,
            n: 256,
            d: 16,
            k: 8,
        };
        let approach = if r.variant_predicted == Variant::Var6.name() {
            Approach::Var6
        } else {
            Approach::Var1
        };
        let terms = model.tm_terms(&ps, approach);
        // the pack-R component must carry exactly the model's pack term
        let pack_r = r
            .drift
            .iter()
            .find(|d| d.component == "gather-pack R")
            .unwrap();
        assert_eq!(pack_r.terms, vec!["pack Rc + R2c".to_string()]);
        let model_val = terms.iter().find(|(t, _)| *t == "pack Rc + R2c").unwrap().1;
        assert!((pack_r.predicted - model_val).abs() < 1e-15);
        // every named term of the model appears in exactly one component
        for (name, _) in &terms {
            let hits: usize = r
                .drift
                .iter()
                .filter(|d| d.terms.iter().any(|t| t == name))
                .count();
            assert_eq!(hits, 1, "term {name} joined {hits} times");
        }
        // the unmodeled writeback row predicts nothing
        let wb = r
            .drift
            .iter()
            .find(|d| d.component == "writeback (unmodeled)")
            .unwrap();
        assert_eq!(wb.predicted, 0.0);
        assert!(wb.ratio().is_none());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn phases_are_measured_with_obs() {
        let r = small_report();
        assert!(r.obs_enabled);
        let total: f64 = r.phases.iter().map(|p| p.seconds).sum();
        assert!(total > 0.0, "no phase time recorded");
        let shares: f64 = r.phases.iter().map(|p| p.share).sum();
        assert!((shares - 1.0).abs() < 1e-9);
        // rank-dc must have recorded spans on a real problem
        assert!(r
            .phases
            .iter()
            .any(|p| p.phase == "rank-dc kernel" && p.spans > 0));
    }

    #[test]
    fn f32_report_carries_precision_and_scaled_predictions() {
        let r32 = profile_synthetic::<f32>(
            96,
            256,
            16,
            8,
            7,
            DistanceKind::SqL2,
            MachineParams::ivy_bridge_1core(),
            1,
        );
        let r64 = small_report();
        assert_eq!(r32.precision, "f32");
        assert_eq!(r64.precision, "f64");
        // the f32 machine model halves every bandwidth-bound term, so the
        // predicted total must drop strictly below the f64 prediction
        for (v32, v64) in r32.variants.iter().zip(&r64.variants) {
            assert_eq!(v32.variant, v64.variant);
            assert!(v32.predicted < v64.predicted, "{}", v32.variant);
        }
        assert_eq!(
            r32.to_json().get("precision").and_then(|v| v.as_str()),
            Some("f32")
        );
        assert!(r32.render_table().contains(" f32 "));
    }

    #[test]
    fn json_round_trips_through_parser() {
        let r = small_report();
        let text = r.to_json().to_string();
        let back = serde_json::from_str(&text).expect("report JSON parses");
        assert_eq!(back.get("m").and_then(|v| v.as_u64()), Some(96));
        assert_eq!(
            back.get("phases")
                .and_then(|v| v.as_array())
                .map(|a| a.len()),
            Some(gsknn_core::obs::PHASE_COUNT)
        );
        assert!(back.get("stats").and_then(|v| v.get("tiles")).is_some());
    }

    #[test]
    fn table_renders_key_sections() {
        let r = small_report();
        let t = r.render_table();
        assert!(t.contains("profile: m=96 n=256 d=16 k=8"));
        assert!(t.contains("variant: model picks"));
        assert!(t.contains("kernel stats:"));
    }
}
