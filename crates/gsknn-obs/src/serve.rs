//! Serving-layer observability: the [`ServeReport`] summarizing one
//! server run (or a live snapshot via the wire `Stats` op).
//!
//! The report mirrors what the §2.6 model promises the batch coalescer:
//! batches flushed on the *model* trigger should run near the predicted
//! asymptotic efficiency, so the report joins the summed model-predicted
//! batch cost (itemized with [`gsknn_core::Model::tm_terms`] by the
//! server's workers) against the summed measured kernel seconds — the
//! same predicted-vs-measured drift discipline as [`crate::ProfileReport`],
//! aggregated over every flush instead of one profiled problem.

use serde_json::Value;

/// Batch-size histogram bucket upper bounds (inclusive); the last bucket
/// is open-ended. Shared between the server's counters and the report so
/// both sides agree on the binning.
pub const BATCH_BUCKETS: [usize; 10] = [1, 2, 4, 8, 16, 32, 64, 128, 256, usize::MAX];

/// Index of the histogram bucket a batch of `m` queries falls into.
pub fn batch_bucket(m: usize) -> usize {
    BATCH_BUCKETS
        .iter()
        .position(|&hi| m <= hi)
        .unwrap_or(BATCH_BUCKETS.len() - 1)
}

/// Why batches were flushed, by trigger.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlushCounts {
    /// The §2.6 model predicted the batch reached the efficient regime
    /// (or the configured hard batch cap, which clamps the model target).
    pub model: u64,
    /// The oldest request's latency budget expired first.
    pub deadline: u64,
    /// Shutdown drain: whatever was queued went out in final batches.
    pub drain: u64,
}

impl FlushCounts {
    /// Fraction of steady-state flushes that were model-triggered
    /// (`model / (model + deadline)`; 0 when neither fired). Drain
    /// flushes are excluded — they say nothing about the policy.
    pub fn coalesce_ratio(&self) -> f64 {
        let steady = self.model + self.deadline;
        if steady == 0 {
            0.0
        } else {
            self.model as f64 / steady as f64
        }
    }
}

/// One server run (or live snapshot) summarized: traffic, admission
/// control, coalescing behavior and model drift.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Element precisions served (informational; e.g. `["f64", "f32"]`).
    pub precisions: Vec<String>,
    /// Request frames received, all ops.
    pub requests: u64,
    /// Query points answered with a neighbor row.
    pub queries: u64,
    /// Admission rejections (bounded queue full → `Busy`).
    pub busy: u64,
    /// Requests that missed their latency deadline.
    pub timeouts: u64,
    /// Malformed or failed requests answered with `Error`.
    pub errors: u64,
    /// Kernel batches executed.
    pub batches: u64,
    /// Worker batches that panicked; every in-flight request in the
    /// batch was answered with `InternalError` instead of being dropped.
    pub worker_panics: u64,
    /// Workers respawned with a fresh executor after a panic.
    pub worker_respawns: u64,
    /// f64 queries answered from the f32 lane while shedding load.
    pub degraded_queries: u64,
    /// Transitions into the overloaded (degraded) state.
    pub overload_events: u64,
    /// Flush counts by trigger.
    pub flushes: FlushCounts,
    /// Batch-size histogram over [`BATCH_BUCKETS`].
    pub batch_hist: Vec<u64>,
    /// Highest simultaneous pending-query count observed.
    pub queue_high_water: u64,
    /// Model-derived batch-size targets per precision lane
    /// (`(precision, m*)`): the smallest batch the §2.6 model predicts
    /// reaches the configured fraction of asymptotic GFLOPS.
    pub batch_targets: Vec<(String, usize)>,
    /// Summed model-predicted batch cost (seconds) over all flushes.
    pub predicted_s: f64,
    /// Summed measured kernel wall time (seconds) over all flushes.
    pub measured_s: f64,
    /// The predicted cost itemized by model term (summed
    /// [`gsknn_core::Model::tm_terms`] rows plus the compute term),
    /// aggregated over all flushed batches.
    pub predicted_terms: Vec<(String, f64)>,
}

impl ServeReport {
    /// Measured over predicted batch cost (`> 1`: the model was
    /// optimistic). `None` until at least one batch has run.
    pub fn drift_ratio(&self) -> Option<f64> {
        if self.predicted_s > 0.0 && self.batches > 0 {
            Some(self.measured_s / self.predicted_s)
        } else {
            None
        }
    }

    /// JSON value for machine consumption (the `Stats` wire op body).
    pub fn to_json(&self) -> Value {
        let hist: Vec<Value> = self
            .batch_hist
            .iter()
            .zip(BATCH_BUCKETS)
            .map(|(&count, hi)| {
                Value::Object(vec![
                    (
                        "le".into(),
                        if hi == usize::MAX {
                            Value::String("inf".into())
                        } else {
                            Value::from(hi)
                        },
                    ),
                    ("count".into(), Value::from(count)),
                ])
            })
            .collect();
        let targets: Vec<Value> = self
            .batch_targets
            .iter()
            .map(|(p, m)| {
                Value::Object(vec![
                    ("precision".into(), Value::String(p.clone())),
                    ("batch_target".into(), Value::from(*m)),
                ])
            })
            .collect();
        let terms: Vec<Value> = self
            .predicted_terms
            .iter()
            .map(|(name, s)| {
                Value::Object(vec![
                    ("term".into(), Value::String(name.clone())),
                    ("predicted_s".into(), Value::from(*s)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("experiment".into(), Value::from("serve")),
            (
                "precisions".into(),
                Value::Array(
                    self.precisions
                        .iter()
                        .map(|p| Value::String(p.clone()))
                        .collect(),
                ),
            ),
            ("requests".into(), Value::from(self.requests)),
            ("queries".into(), Value::from(self.queries)),
            ("busy".into(), Value::from(self.busy)),
            ("timeouts".into(), Value::from(self.timeouts)),
            ("errors".into(), Value::from(self.errors)),
            ("batches".into(), Value::from(self.batches)),
            ("worker_panics".into(), Value::from(self.worker_panics)),
            ("worker_respawns".into(), Value::from(self.worker_respawns)),
            (
                "degraded_queries".into(),
                Value::from(self.degraded_queries),
            ),
            ("overload_events".into(), Value::from(self.overload_events)),
            ("flush_model".into(), Value::from(self.flushes.model)),
            ("flush_deadline".into(), Value::from(self.flushes.deadline)),
            ("flush_drain".into(), Value::from(self.flushes.drain)),
            (
                "coalesce_ratio".into(),
                Value::from(self.flushes.coalesce_ratio()),
            ),
            ("batch_hist".into(), Value::Array(hist)),
            (
                "queue_high_water".into(),
                Value::from(self.queue_high_water),
            ),
            ("batch_targets".into(), Value::Array(targets)),
            ("predicted_s".into(), Value::from(self.predicted_s)),
            ("measured_s".into(), Value::from(self.measured_s)),
            (
                "drift_ratio".into(),
                self.drift_ratio().map(Value::from).unwrap_or(Value::Null),
            ),
            ("predicted_terms".into(), Value::Array(terms)),
        ])
    }

    /// Human-readable report.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "serve: {} requests | {} queries answered | {} busy | {} timeouts | {} errors\n",
            self.requests, self.queries, self.busy, self.timeouts, self.errors
        ));
        out.push_str(&format!(
            "batches: {} (flush: {} model, {} deadline, {} drain | coalesce ratio {:.2})\n",
            self.batches,
            self.flushes.model,
            self.flushes.deadline,
            self.flushes.drain,
            self.flushes.coalesce_ratio()
        ));
        if self.worker_panics + self.worker_respawns + self.degraded_queries + self.overload_events
            > 0
        {
            out.push_str(&format!(
                "faults: {} worker panics | {} respawns | {} degraded queries | {} overload events\n",
                self.worker_panics, self.worker_respawns, self.degraded_queries, self.overload_events
            ));
        }
        let targets: Vec<String> = self
            .batch_targets
            .iter()
            .map(|(p, m)| format!("{p}: m* = {m}"))
            .collect();
        out.push_str(&format!(
            "queue high water: {} | model batch targets: {}\n",
            self.queue_high_water,
            targets.join(", ")
        ));
        out.push_str("  batch size   count\n");
        for (&count, hi) in self.batch_hist.iter().zip(BATCH_BUCKETS) {
            if count == 0 {
                continue;
            }
            let label = if hi == usize::MAX {
                "   >256".to_string()
            } else {
                format!("{hi:>7}")
            };
            out.push_str(&format!("  <= {label} {count:>7}\n"));
        }
        match self.drift_ratio() {
            Some(r) => out.push_str(&format!(
                "batch cost: predicted {:.3} ms | measured {:.3} ms | drift x{:.2}\n",
                self.predicted_s * 1e3,
                self.measured_s * 1e3,
                r
            )),
            None => out.push_str("batch cost: no batches executed\n"),
        }
        for (name, s) in &self.predicted_terms {
            out.push_str(&format!("  {:<32} {:>10.3} ms\n", name, s * 1e3));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeReport {
        let mut hist = vec![0u64; BATCH_BUCKETS.len()];
        hist[batch_bucket(1)] += 2;
        hist[batch_bucket(24)] += 3;
        hist[batch_bucket(4096)] += 1;
        ServeReport {
            precisions: vec!["f64".into(), "f32".into()],
            requests: 42,
            queries: 210,
            busy: 3,
            timeouts: 1,
            errors: 2,
            batches: 6,
            worker_panics: 1,
            worker_respawns: 1,
            degraded_queries: 5,
            overload_events: 1,
            flushes: FlushCounts {
                model: 4,
                deadline: 1,
                drain: 1,
            },
            batch_hist: hist,
            queue_high_water: 17,
            batch_targets: vec![("f64".into(), 48), ("f32".into(), 96)],
            predicted_s: 0.010,
            measured_s: 0.013,
            predicted_terms: vec![
                ("compute (Tf + To)".into(), 0.004),
                ("pack Rc + R2c".into(), 0.006),
            ],
        }
    }

    #[test]
    fn buckets_cover_all_sizes_monotonically() {
        assert_eq!(batch_bucket(1), 0);
        assert_eq!(batch_bucket(2), 1);
        assert_eq!(batch_bucket(3), 2);
        assert_eq!(batch_bucket(256), 8);
        assert_eq!(batch_bucket(257), 9);
        assert_eq!(batch_bucket(usize::MAX), BATCH_BUCKETS.len() - 1);
        let mut prev = 0;
        for m in 1..2000 {
            let b = batch_bucket(m);
            assert!(b >= prev, "bucket must not decrease at m={m}");
            prev = b;
        }
    }

    #[test]
    fn coalesce_ratio_ignores_drain() {
        let f = FlushCounts {
            model: 3,
            deadline: 1,
            drain: 100,
        };
        assert!((f.coalesce_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(FlushCounts::default().coalesce_ratio(), 0.0);
    }

    #[test]
    fn json_round_trips_counters() {
        let r = sample();
        let text = r.to_json().to_string();
        let back: Value = serde_json::from_str(&text).expect("serve JSON parses");
        assert_eq!(back.get("requests").and_then(|v| v.as_u64()), Some(42));
        assert_eq!(back.get("flush_model").and_then(|v| v.as_u64()), Some(4));
        assert_eq!(back.get("flush_deadline").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(back.get("busy").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(back.get("worker_panics").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(
            back.get("degraded_queries").and_then(|v| v.as_u64()),
            Some(5)
        );
        assert_eq!(
            back.get("overload_events").and_then(|v| v.as_u64()),
            Some(1)
        );
        assert!((back.get("coalesce_ratio").and_then(|v| v.as_f64()).unwrap() - 0.8).abs() < 1e-12);
        assert_eq!(
            back.get("batch_hist")
                .and_then(|v| v.as_array())
                .map(|a| a.len()),
            Some(BATCH_BUCKETS.len())
        );
        let drift = back.get("drift_ratio").and_then(|v| v.as_f64()).unwrap();
        assert!((drift - 1.3).abs() < 1e-9);
    }

    #[test]
    fn render_mentions_every_section() {
        let text = sample().render_table();
        assert!(text.contains("42 requests"));
        assert!(text.contains("coalesce ratio 0.80"));
        assert!(text.contains("m* = 48"));
        assert!(text.contains("drift x1.30"));
        assert!(text.contains("pack Rc + R2c"));
        assert!(text.contains("1 worker panics"));
        assert!(text.contains("5 degraded queries"));
    }

    #[test]
    fn fault_line_is_omitted_when_clean() {
        let mut r = sample();
        r.worker_panics = 0;
        r.worker_respawns = 0;
        r.degraded_queries = 0;
        r.overload_events = 0;
        assert!(!r.render_table().contains("faults:"));
    }

    #[test]
    fn no_batches_yields_no_drift() {
        let mut r = sample();
        r.batches = 0;
        r.predicted_s = 0.0;
        r.measured_s = 0.0;
        assert_eq!(r.drift_ratio(), None);
        assert!(r.render_table().contains("no batches executed"));
        assert_eq!(r.to_json().get("drift_ratio"), Some(&Value::Null));
    }
}
