//! Serving-layer observability: the [`ServeReport`] summarizing one
//! server run (or a live snapshot via the wire `Stats` op).
//!
//! The report mirrors what the §2.6 model promises the batch coalescer:
//! batches flushed on the *model* trigger should run near the predicted
//! asymptotic efficiency, so the report joins the summed model-predicted
//! batch cost (itemized with [`gsknn_core::Model::tm_terms`] by the
//! server's workers) against the summed measured kernel seconds — the
//! same predicted-vs-measured drift discipline as [`crate::ProfileReport`],
//! aggregated over every flush instead of one profiled problem.

use crate::hist::HistSnapshot;
use crate::roofline::{BoundClass, RooflineRow};
use serde_json::Value;

/// Escape a label value for the Prometheus text exposition (format
/// 0.0.4): backslash, double-quote and newline must be escaped inside
/// the quoted value.
pub fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Per-shard traffic and supervision counters: one row per shard thread
/// in the sharded server, so a hot or flapping shard is visible without
/// grepping logs.
#[derive(Clone, Debug, Default)]
pub struct ShardRow {
    /// Shard index (also the pinned core when `--pin-cores` is on).
    pub shard: usize,
    /// Kernel batches this shard executed.
    pub batches: u64,
    /// Query points this shard answered.
    pub queries: u64,
    /// Batches that panicked in this shard.
    pub worker_panics: u64,
    /// Workspace rebuilds after a panic.
    pub worker_respawns: u64,
    /// Connections the acceptor handed to this shard over the run.
    pub conns: u64,
}

/// End-to-end latency histogram for one (lane, terminal status) pair.
#[derive(Clone, Debug)]
pub struct LatencyRow {
    /// Precision lane (`"f64"` / `"f32"`).
    pub lane: String,
    /// Terminal wire status label (`"ok"`, `"busy"`, `"timeout"`, …).
    pub status: String,
    /// Log-bucketed receive-to-reply latency distribution.
    pub hist: HistSnapshot,
    /// Slowest trace id per bucket ([`crate::hist::Exemplars`]
    /// snapshot), rendered as OpenMetrics-style exemplar suffixes on
    /// the matching `_bucket` exposition lines. Empty when tracing is
    /// compiled out.
    pub exemplars: Vec<crate::hist::BucketExemplar>,
}

/// Batch-size histogram bucket upper bounds (inclusive); the last bucket
/// is open-ended. Shared between the server's counters and the report so
/// both sides agree on the binning.
pub const BATCH_BUCKETS: [usize; 10] = [1, 2, 4, 8, 16, 32, 64, 128, 256, usize::MAX];

/// Index of the histogram bucket a batch of `m` queries falls into.
pub fn batch_bucket(m: usize) -> usize {
    BATCH_BUCKETS
        .iter()
        .position(|&hi| m <= hi)
        .unwrap_or(BATCH_BUCKETS.len() - 1)
}

/// Why batches were flushed, by trigger.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlushCounts {
    /// The §2.6 model predicted the batch reached the efficient regime
    /// (or the configured hard batch cap, which clamps the model target).
    pub model: u64,
    /// The oldest request's latency budget expired first.
    pub deadline: u64,
    /// Shutdown drain: whatever was queued went out in final batches.
    pub drain: u64,
}

impl FlushCounts {
    /// Fraction of steady-state flushes that were model-triggered
    /// (`model / (model + deadline)`; 0 when neither fired). Drain
    /// flushes are excluded — they say nothing about the policy.
    pub fn coalesce_ratio(&self) -> f64 {
        let steady = self.model + self.deadline;
        if steady == 0 {
            0.0
        } else {
            self.model as f64 / steady as f64
        }
    }
}

/// One server run (or live snapshot) summarized: traffic, admission
/// control, coalescing behavior and model drift.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Element precisions served (informational; e.g. `["f64", "f32"]`).
    pub precisions: Vec<String>,
    /// Request frames received, all ops.
    pub requests: u64,
    /// Query points answered with a neighbor row.
    pub queries: u64,
    /// Admission rejections (bounded queue full → `Busy`).
    pub busy: u64,
    /// Requests that missed their latency deadline.
    pub timeouts: u64,
    /// Malformed or failed requests answered with `Error`.
    pub errors: u64,
    /// Kernel batches executed.
    pub batches: u64,
    /// Worker batches that panicked; every in-flight request in the
    /// batch was answered with `InternalError` instead of being dropped.
    pub worker_panics: u64,
    /// Workers respawned with a fresh executor after a panic.
    pub worker_respawns: u64,
    /// f64 queries answered from the f32 lane while shedding load.
    pub degraded_queries: u64,
    /// Transitions into the overloaded (degraded) state.
    pub overload_events: u64,
    /// Flush counts by trigger.
    pub flushes: FlushCounts,
    /// Per-lane roofline attribution: executed-batch counts per bound
    /// class ([`BoundClass`]) plus the headroom gauge. Empty when the
    /// server compiled its `obs` feature out (the recorder is a
    /// zero-sized no-op there).
    pub roofline: Vec<RooflineRow>,
    /// Per-shard traffic and supervision rows; empty for reports
    /// predating the sharded server.
    pub shards: Vec<ShardRow>,
    /// Batch-size histogram over [`BATCH_BUCKETS`].
    pub batch_hist: Vec<u64>,
    /// Highest simultaneous pending-query count observed.
    pub queue_high_water: u64,
    /// Query points in flight at snapshot time (gauge).
    pub in_flight: u64,
    /// Whether the overload detector held the degraded state at
    /// snapshot time (gauge).
    pub overloaded: bool,
    /// End-to-end request latency histograms, one row per non-empty
    /// (lane × terminal status) pair. Latency covers receive → reply
    /// written, measured at the server.
    pub latency: Vec<LatencyRow>,
    /// Model-derived batch-size targets per precision lane
    /// (`(precision, m*)`): the smallest batch the §2.6 model predicts
    /// reaches the configured fraction of asymptotic GFLOPS.
    pub batch_targets: Vec<(String, usize)>,
    /// Summed model-predicted batch cost (seconds) over all flushes.
    pub predicted_s: f64,
    /// Summed measured kernel wall time (seconds) over all flushes.
    pub measured_s: f64,
    /// The predicted cost itemized by model term (summed
    /// [`gsknn_core::Model::tm_terms`] rows plus the compute term),
    /// aggregated over all flushed batches.
    pub predicted_terms: Vec<(String, f64)>,
}

impl ServeReport {
    /// Measured over predicted batch cost (`> 1`: the model was
    /// optimistic). `None` until at least one batch has run.
    pub fn drift_ratio(&self) -> Option<f64> {
        if self.predicted_s > 0.0 && self.batches > 0 {
            Some(self.measured_s / self.predicted_s)
        } else {
            None
        }
    }

    /// JSON value for machine consumption (the `Stats` wire op body).
    pub fn to_json(&self) -> Value {
        let hist: Vec<Value> = self
            .batch_hist
            .iter()
            .zip(BATCH_BUCKETS)
            .map(|(&count, hi)| {
                Value::Object(vec![
                    (
                        "le".into(),
                        if hi == usize::MAX {
                            Value::String("inf".into())
                        } else {
                            Value::from(hi)
                        },
                    ),
                    ("count".into(), Value::from(count)),
                ])
            })
            .collect();
        let targets: Vec<Value> = self
            .batch_targets
            .iter()
            .map(|(p, m)| {
                Value::Object(vec![
                    ("precision".into(), Value::String(p.clone())),
                    ("batch_target".into(), Value::from(*m)),
                ])
            })
            .collect();
        let terms: Vec<Value> = self
            .predicted_terms
            .iter()
            .map(|(name, s)| {
                Value::Object(vec![
                    ("term".into(), Value::String(name.clone())),
                    ("predicted_s".into(), Value::from(*s)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("experiment".into(), Value::from("serve")),
            (
                "precisions".into(),
                Value::Array(
                    self.precisions
                        .iter()
                        .map(|p| Value::String(p.clone()))
                        .collect(),
                ),
            ),
            ("requests".into(), Value::from(self.requests)),
            ("queries".into(), Value::from(self.queries)),
            ("busy".into(), Value::from(self.busy)),
            ("timeouts".into(), Value::from(self.timeouts)),
            ("errors".into(), Value::from(self.errors)),
            ("batches".into(), Value::from(self.batches)),
            ("worker_panics".into(), Value::from(self.worker_panics)),
            ("worker_respawns".into(), Value::from(self.worker_respawns)),
            (
                "degraded_queries".into(),
                Value::from(self.degraded_queries),
            ),
            ("overload_events".into(), Value::from(self.overload_events)),
            ("flush_model".into(), Value::from(self.flushes.model)),
            ("flush_deadline".into(), Value::from(self.flushes.deadline)),
            ("flush_drain".into(), Value::from(self.flushes.drain)),
            (
                "coalesce_ratio".into(),
                Value::from(self.flushes.coalesce_ratio()),
            ),
            (
                "roofline".into(),
                Value::Array(self.roofline.iter().map(RooflineRow::to_json).collect()),
            ),
            (
                "shards".into(),
                Value::Array(
                    self.shards
                        .iter()
                        .map(|s| {
                            Value::Object(vec![
                                ("shard".into(), Value::from(s.shard)),
                                ("batches".into(), Value::from(s.batches)),
                                ("queries".into(), Value::from(s.queries)),
                                ("worker_panics".into(), Value::from(s.worker_panics)),
                                ("worker_respawns".into(), Value::from(s.worker_respawns)),
                                ("conns".into(), Value::from(s.conns)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("batch_hist".into(), Value::Array(hist)),
            (
                "queue_high_water".into(),
                Value::from(self.queue_high_water),
            ),
            ("in_flight".into(), Value::from(self.in_flight)),
            ("overloaded".into(), Value::from(self.overloaded)),
            (
                "latency".into(),
                Value::Array(
                    self.latency
                        .iter()
                        .map(|row| {
                            let mut obj = vec![
                                ("lane".into(), Value::String(row.lane.clone())),
                                ("status".into(), Value::String(row.status.clone())),
                            ];
                            if let Value::Object(fields) = row.hist.to_json() {
                                obj.extend(fields);
                            }
                            if !row.exemplars.is_empty() {
                                obj.push((
                                    "exemplars".into(),
                                    Value::Array(
                                        row.exemplars
                                            .iter()
                                            .map(|x| {
                                                Value::Object(vec![
                                                    ("le_ns".into(), Value::from(x.le_ns)),
                                                    ("ns".into(), Value::from(x.ns)),
                                                    (
                                                        "trace_id".into(),
                                                        Value::String(format!(
                                                            "{:016x}",
                                                            x.trace_id
                                                        )),
                                                    ),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ));
                            }
                            Value::Object(obj)
                        })
                        .collect(),
                ),
            ),
            ("batch_targets".into(), Value::Array(targets)),
            ("predicted_s".into(), Value::from(self.predicted_s)),
            ("measured_s".into(), Value::from(self.measured_s)),
            (
                "drift_ratio".into(),
                self.drift_ratio().map(Value::from).unwrap_or(Value::Null),
            ),
            ("predicted_terms".into(), Value::Array(terms)),
        ])
    }

    /// Human-readable report.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "serve: {} requests | {} queries answered | {} busy | {} timeouts | {} errors\n",
            self.requests, self.queries, self.busy, self.timeouts, self.errors
        ));
        out.push_str(&format!(
            "batches: {} (flush: {} model, {} deadline, {} drain | coalesce ratio {:.2})\n",
            self.batches,
            self.flushes.model,
            self.flushes.deadline,
            self.flushes.drain,
            self.flushes.coalesce_ratio()
        ));
        for row in &self.roofline {
            if row.total() == 0 {
                continue;
            }
            let counts: Vec<String> = BoundClass::ALL
                .iter()
                .map(|c| format!("{} {}", row.counts[c.index()], c.name()))
                .collect();
            let headroom = row
                .headroom_mean()
                .map(|h| format!("x{h:.2}"))
                .unwrap_or_else(|| "n/a".to_string());
            let policy = row
                .policy_bound_share()
                .map(|s| format!("{:.0}%", s * 100.0))
                .unwrap_or_else(|| "n/a".to_string());
            out.push_str(&format!(
                "roofline {}: {} | headroom {} | policy-bound {}\n",
                row.lane,
                counts.join(", "),
                headroom,
                policy
            ));
        }
        for s in &self.shards {
            out.push_str(&format!(
                "shard {}: {} batches | {} queries | {} conns{}\n",
                s.shard,
                s.batches,
                s.queries,
                s.conns,
                if s.worker_panics + s.worker_respawns > 0 {
                    format!(
                        " | {} panics, {} respawns",
                        s.worker_panics, s.worker_respawns
                    )
                } else {
                    String::new()
                }
            ));
        }
        if self.worker_panics + self.worker_respawns + self.degraded_queries + self.overload_events
            > 0
        {
            out.push_str(&format!(
                "faults: {} worker panics | {} respawns | {} degraded queries | {} overload events\n",
                self.worker_panics, self.worker_respawns, self.degraded_queries, self.overload_events
            ));
        }
        let targets: Vec<String> = self
            .batch_targets
            .iter()
            .map(|(p, m)| format!("{p}: m* = {m}"))
            .collect();
        out.push_str(&format!(
            "queue high water: {} | model batch targets: {}\n",
            self.queue_high_water,
            targets.join(", ")
        ));
        out.push_str("  batch size   count\n");
        for (&count, hi) in self.batch_hist.iter().zip(BATCH_BUCKETS) {
            if count == 0 {
                continue;
            }
            let label = if hi == usize::MAX {
                "   >256".to_string()
            } else {
                format!("{hi:>7}")
            };
            out.push_str(&format!("  <= {label} {count:>7}\n"));
        }
        if !self.latency.is_empty() {
            out.push_str("  latency (lane/status)     n       p50       p90       p99      p999\n");
            for row in &self.latency {
                let ms = |v: Option<u64>| match v {
                    Some(ns) => format!("{:>8.2}ms", ns as f64 / 1e6),
                    None => "       n/a".to_string(),
                };
                out.push_str(&format!(
                    "  {:<22} {:>5} {} {} {} {}\n",
                    format!("{}/{}", row.lane, row.status),
                    row.hist.count(),
                    ms(row.hist.p50_ns()),
                    ms(row.hist.p90_ns()),
                    ms(row.hist.p99_ns()),
                    ms(row.hist.p999_ns()),
                ));
            }
        }
        match self.drift_ratio() {
            Some(r) => out.push_str(&format!(
                "batch cost: predicted {:.3} ms | measured {:.3} ms | drift x{:.2}\n",
                self.predicted_s * 1e3,
                self.measured_s * 1e3,
                r
            )),
            None => out.push_str("batch cost: no batches executed\n"),
        }
        for (name, s) in &self.predicted_terms {
            out.push_str(&format!("  {:<32} {:>10.3} ms\n", name, s * 1e3));
        }
        out
    }

    /// Prometheus text exposition (version 0.0.4): counters, gauges and
    /// cumulative latency histograms, scrapeable via the `Metrics` wire
    /// op or the server's `--metrics-addr` HTTP listener. Only buckets
    /// that gained samples are emitted (plus `+Inf`); the cumulative
    /// counts stay correct on any `le` grid.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        };
        counter(
            "gsknn_requests_total",
            "Request frames received (all ops).",
            self.requests,
        );
        counter(
            "gsknn_queries_total",
            "Query points answered with a neighbor row.",
            self.queries,
        );
        counter(
            "gsknn_busy_total",
            "Requests bounced by admission control.",
            self.busy,
        );
        counter(
            "gsknn_timeouts_total",
            "Requests whose latency budget expired before the kernel ran.",
            self.timeouts,
        );
        counter(
            "gsknn_errors_total",
            "Malformed or failed requests.",
            self.errors,
        );
        counter(
            "gsknn_batches_total",
            "Kernel batches executed.",
            self.batches,
        );
        counter(
            "gsknn_worker_panics_total",
            "Worker batches that panicked.",
            self.worker_panics,
        );
        counter(
            "gsknn_worker_respawns_total",
            "Workers rebuilt after a panic.",
            self.worker_respawns,
        );
        counter(
            "gsknn_degraded_queries_total",
            "f64 queries answered from the f32 lane while shedding load.",
            self.degraded_queries,
        );
        counter(
            "gsknn_overload_events_total",
            "Transitions into the overloaded state.",
            self.overload_events,
        );
        out.push_str(
            "# HELP gsknn_flushes_total Coalescer flushes by trigger.\n# TYPE gsknn_flushes_total counter\n",
        );
        for (reason, v) in [
            ("model", self.flushes.model),
            ("deadline", self.flushes.deadline),
            ("drain", self.flushes.drain),
        ] {
            out.push_str(&format!("gsknn_flushes_total{{reason=\"{reason}\"}} {v}\n"));
        }
        if !self.roofline.is_empty() {
            out.push_str(
                "# HELP gsknn_roofline_batches_total Executed batches by binding roofline class.\n# TYPE gsknn_roofline_batches_total counter\n",
            );
            for row in &self.roofline {
                let lane = escape_label(&row.lane);
                for class in BoundClass::ALL {
                    out.push_str(&format!(
                        "gsknn_roofline_batches_total{{lane=\"{lane}\",bound=\"{}\"}} {}\n",
                        class.name(),
                        row.counts[class.index()]
                    ));
                }
            }
        }
        if !self.shards.is_empty() {
            let mut shard_counter = |name: &str, help: &str, get: &dyn Fn(&ShardRow) -> u64| {
                out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
                for s in &self.shards {
                    out.push_str(&format!("{name}{{shard=\"{}\"}} {}\n", s.shard, get(s)));
                }
            };
            shard_counter(
                "gsknn_shard_batches_total",
                "Kernel batches executed, per shard.",
                &|s| s.batches,
            );
            shard_counter(
                "gsknn_shard_queries_total",
                "Query points answered, per shard.",
                &|s| s.queries,
            );
            shard_counter(
                "gsknn_shard_worker_panics_total",
                "Batches that panicked, per shard.",
                &|s| s.worker_panics,
            );
            shard_counter(
                "gsknn_shard_worker_respawns_total",
                "Workspace rebuilds after a panic, per shard.",
                &|s| s.worker_respawns,
            );
            shard_counter(
                "gsknn_shard_connections_total",
                "Connections adopted from the acceptor, per shard.",
                &|s| s.conns,
            );
        }
        let mut gauge = |name: &str, help: &str, v: String| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
            ));
        };
        gauge(
            "gsknn_in_flight",
            "Query points currently admitted and unanswered.",
            self.in_flight.to_string(),
        );
        gauge(
            "gsknn_overloaded",
            "1 while the overload detector holds the degraded state.",
            u64::from(self.overloaded).to_string(),
        );
        gauge(
            "gsknn_queue_high_water",
            "Highest simultaneous in-flight query count observed.",
            self.queue_high_water.to_string(),
        );
        gauge(
            "gsknn_coalesce_ratio",
            "Fraction of steady-state flushes triggered by the model.",
            format!("{:.6}", self.flushes.coalesce_ratio()),
        );
        if self.roofline.iter().any(|r| r.total() > 0) {
            out.push_str(
                "# HELP gsknn_roofline_headroom Mean asymptote-over-achieved on the binding resource.\n# TYPE gsknn_roofline_headroom gauge\n",
            );
            for row in &self.roofline {
                if let Some(h) = row.headroom_mean() {
                    out.push_str(&format!(
                        "gsknn_roofline_headroom{{lane=\"{}\"}} {h:.6}\n",
                        escape_label(&row.lane)
                    ));
                }
            }
        }
        out.push_str(
            "# HELP gsknn_batch_target Model batch-size target m* per lane.\n# TYPE gsknn_batch_target gauge\n",
        );
        for (lane, m) in &self.batch_targets {
            out.push_str(&format!(
                "gsknn_batch_target{{lane=\"{}\"}} {m}\n",
                escape_label(lane)
            ));
        }
        out.push_str(
            "# HELP gsknn_batch_size Coalesced batch sizes.\n# TYPE gsknn_batch_size histogram\n",
        );
        let mut cum = 0u64;
        for (&count, hi) in self.batch_hist.iter().zip(BATCH_BUCKETS) {
            cum += count;
            if count == 0 && hi != usize::MAX {
                continue;
            }
            let le = if hi == usize::MAX {
                "+Inf".to_string()
            } else {
                hi.to_string()
            };
            out.push_str(&format!("gsknn_batch_size_bucket{{le=\"{le}\"}} {cum}\n"));
        }
        out.push_str(&format!("gsknn_batch_size_count {cum}\n"));
        if !self.latency.is_empty() {
            out.push_str(
                "# HELP gsknn_request_latency_seconds End-to-end request latency (receive to reply written).\n# TYPE gsknn_request_latency_seconds histogram\n",
            );
            for row in &self.latency {
                let labels = format!(
                    "lane=\"{}\",status=\"{}\"",
                    escape_label(&row.lane),
                    escape_label(&row.status)
                );
                let mut cum = 0u64;
                for (le_ns, count) in row.hist.nonzero_buckets() {
                    cum += count;
                    let le = if le_ns == u64::MAX {
                        "+Inf".to_string()
                    } else {
                        format!("{:.9}", le_ns as f64 / 1e9)
                    };
                    // OpenMetrics-style exemplar: link the bucket to
                    // the slowest trace that landed in it
                    let exemplar = row
                        .exemplars
                        .iter()
                        .find(|x| x.le_ns == le_ns)
                        .map(|x| {
                            format!(
                                " # {{trace_id=\"{:016x}\"}} {:.9}",
                                x.trace_id,
                                x.ns as f64 / 1e9
                            )
                        })
                        .unwrap_or_default();
                    out.push_str(&format!(
                        "gsknn_request_latency_seconds_bucket{{{labels},le=\"{le}\"}} {cum}{exemplar}\n"
                    ));
                }
                out.push_str(&format!(
                    "gsknn_request_latency_seconds_bucket{{{labels},le=\"+Inf\"}} {cum}\n"
                ));
                out.push_str(&format!(
                    "gsknn_request_latency_seconds_sum{{{labels}}} {:.9}\n",
                    row.hist.sum_ns as f64 / 1e9
                ));
                out.push_str(&format!(
                    "gsknn_request_latency_seconds_count{{{labels}}} {}\n",
                    row.hist.count()
                ));
            }
        }
        out.push_str(&format!(
            "# HELP gsknn_batch_cost_predicted_seconds_total Summed model-predicted batch cost.\n# TYPE gsknn_batch_cost_predicted_seconds_total counter\ngsknn_batch_cost_predicted_seconds_total {:.9}\n",
            self.predicted_s
        ));
        out.push_str(&format!(
            "# HELP gsknn_batch_cost_measured_seconds_total Summed measured kernel wall time.\n# TYPE gsknn_batch_cost_measured_seconds_total counter\ngsknn_batch_cost_measured_seconds_total {:.9}\n",
            self.measured_s
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeReport {
        let mut hist = vec![0u64; BATCH_BUCKETS.len()];
        hist[batch_bucket(1)] += 2;
        hist[batch_bucket(24)] += 3;
        hist[batch_bucket(4096)] += 1;
        ServeReport {
            precisions: vec!["f64".into(), "f32".into()],
            requests: 42,
            queries: 210,
            busy: 3,
            timeouts: 1,
            errors: 2,
            batches: 6,
            worker_panics: 1,
            worker_respawns: 1,
            degraded_queries: 5,
            overload_events: 1,
            flushes: FlushCounts {
                model: 4,
                deadline: 1,
                drain: 1,
            },
            roofline: vec![
                RooflineRow {
                    lane: "f64".into(),
                    counts: [1, 0, 3, 0],
                    headroom_sum: 12.0,
                },
                RooflineRow {
                    lane: "f32".into(),
                    counts: [0, 1, 1, 0],
                    headroom_sum: 5.0,
                },
            ],
            shards: vec![
                ShardRow {
                    shard: 0,
                    batches: 4,
                    queries: 140,
                    worker_panics: 0,
                    worker_respawns: 0,
                    conns: 5,
                },
                ShardRow {
                    shard: 1,
                    batches: 2,
                    queries: 70,
                    worker_panics: 1,
                    worker_respawns: 1,
                    conns: 4,
                },
            ],
            batch_hist: hist,
            queue_high_water: 17,
            in_flight: 4,
            overloaded: true,
            latency: vec![
                LatencyRow {
                    lane: "f64".into(),
                    status: "ok".into(),
                    hist: {
                        let mut h = HistSnapshot::new();
                        for ns in [900_000, 1_100_000, 2_000_000, 40_000_000] {
                            h.record_ns(ns);
                        }
                        h
                    },
                    exemplars: Vec::new(),
                },
                LatencyRow {
                    lane: "f32".into(),
                    status: "timeout".into(),
                    hist: {
                        let mut h = HistSnapshot::new();
                        h.record_ns(55_000_000);
                        h
                    },
                    exemplars: Vec::new(),
                },
            ],
            batch_targets: vec![("f64".into(), 48), ("f32".into(), 96)],
            predicted_s: 0.010,
            measured_s: 0.013,
            predicted_terms: vec![
                ("compute (Tf + To)".into(), 0.004),
                ("pack Rc + R2c".into(), 0.006),
            ],
        }
    }

    #[test]
    fn buckets_cover_all_sizes_monotonically() {
        assert_eq!(batch_bucket(1), 0);
        assert_eq!(batch_bucket(2), 1);
        assert_eq!(batch_bucket(3), 2);
        assert_eq!(batch_bucket(256), 8);
        assert_eq!(batch_bucket(257), 9);
        assert_eq!(batch_bucket(usize::MAX), BATCH_BUCKETS.len() - 1);
        let mut prev = 0;
        for m in 1..2000 {
            let b = batch_bucket(m);
            assert!(b >= prev, "bucket must not decrease at m={m}");
            prev = b;
        }
    }

    #[test]
    fn coalesce_ratio_ignores_drain() {
        let f = FlushCounts {
            model: 3,
            deadline: 1,
            drain: 100,
        };
        assert!((f.coalesce_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(FlushCounts::default().coalesce_ratio(), 0.0);
    }

    #[test]
    fn json_round_trips_counters() {
        let r = sample();
        let text = r.to_json().to_string();
        let back: Value = serde_json::from_str(&text).expect("serve JSON parses");
        assert_eq!(back.get("requests").and_then(|v| v.as_u64()), Some(42));
        assert_eq!(back.get("flush_model").and_then(|v| v.as_u64()), Some(4));
        assert_eq!(back.get("flush_deadline").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(back.get("busy").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(back.get("worker_panics").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(
            back.get("degraded_queries").and_then(|v| v.as_u64()),
            Some(5)
        );
        assert_eq!(
            back.get("overload_events").and_then(|v| v.as_u64()),
            Some(1)
        );
        assert!((back.get("coalesce_ratio").and_then(|v| v.as_f64()).unwrap() - 0.8).abs() < 1e-12);
        assert_eq!(
            back.get("batch_hist")
                .and_then(|v| v.as_array())
                .map(|a| a.len()),
            Some(BATCH_BUCKETS.len())
        );
        let drift = back.get("drift_ratio").and_then(|v| v.as_f64()).unwrap();
        assert!((drift - 1.3).abs() < 1e-9);
    }

    #[test]
    fn render_mentions_every_section() {
        let text = sample().render_table();
        assert!(text.contains("42 requests"));
        assert!(text.contains("coalesce ratio 0.80"));
        assert!(text.contains("m* = 48"));
        assert!(text.contains("drift x1.30"));
        assert!(text.contains("pack Rc + R2c"));
        assert!(text.contains("1 worker panics"));
        assert!(text.contains("5 degraded queries"));
    }

    #[test]
    fn json_carries_latency_rows() {
        let r = sample();
        let back: Value = serde_json::from_str(&r.to_json().to_string()).unwrap();
        assert_eq!(back.get("in_flight").and_then(|v| v.as_u64()), Some(4));
        let rows = back.get("latency").and_then(|v| v.as_array()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("lane").and_then(|v| v.as_str()), Some("f64"));
        assert_eq!(rows[0].get("count").and_then(|v| v.as_u64()), Some(4));
        assert!(rows[0].get("p99_us").and_then(|v| v.as_f64()).unwrap() > 0.0);
    }

    #[test]
    fn render_table_includes_latency_quantiles() {
        let text = sample().render_table();
        assert!(text.contains("f64/ok"));
        assert!(text.contains("f32/timeout"));
        assert!(text.contains("p99"));
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let text = sample().render_prometheus();
        assert!(text.contains("# TYPE gsknn_requests_total counter"));
        assert!(text.contains("gsknn_requests_total 42"));
        assert!(text.contains("gsknn_queries_total 210"));
        assert!(text.contains("gsknn_flushes_total{reason=\"model\"} 4"));
        assert!(text.contains("gsknn_in_flight 4"));
        assert!(text.contains("gsknn_overloaded 1"));
        assert!(text.contains("gsknn_batch_target{lane=\"f64\"} 48"));
        assert!(text.contains("gsknn_request_latency_seconds_count{lane=\"f64\",status=\"ok\"} 4"));
        assert!(text.contains(
            "gsknn_request_latency_seconds_bucket{lane=\"f64\",status=\"ok\",le=\"+Inf\"} 4"
        ));
        // cumulative bucket counts never decrease within a series
        let mut prev = 0u64;
        for line in text.lines().filter(|l| {
            l.starts_with("gsknn_request_latency_seconds_bucket{lane=\"f64\",status=\"ok\"")
        }) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= prev, "non-monotone cumulative count in {line}");
            prev = v;
        }
        // every non-comment line is `name{labels} value` or `name value`
        for line in text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable sample value in {line}"
            );
            assert!(parts.next().is_some());
        }
    }

    #[test]
    fn exemplar_suffixes_render_and_parse() {
        let mut r = sample();
        // attach exemplars to the f64/ok row, built from its samples
        let store = crate::hist::Exemplars::new();
        for (ns, id) in [
            (900_000u64, 0xAAu64),
            (1_100_000, 0xBB),
            (2_000_000, 0xCC),
            (40_000_000, 0xDD),
        ] {
            store.record(ns, id);
        }
        r.latency[0].exemplars = store.snapshot();
        let prom = r.render_prometheus();
        // the slowest bucket's line carries its trace id and seconds
        assert!(
            prom.contains("# {trace_id=\"00000000000000dd\"} 0.040000000"),
            "{prom}"
        );
        // the strict parser accepts the exemplar syntax and surfaces it
        let samples = promparse::parse(&prom).expect("exemplar exposition parses");
        let with_ex: Vec<_> = samples.iter().filter(|s| s.exemplar.is_some()).collect();
        assert_eq!(with_ex.len(), 4, "one exemplar per non-empty bucket");
        for s in &with_ex {
            assert_eq!(s.name, "gsknn_request_latency_seconds_bucket");
            let (labels, value) = s.exemplar.as_ref().unwrap();
            assert_eq!(labels.len(), 1);
            assert_eq!(labels[0].0, "trace_id");
            assert!(*value > 0.0);
        }
        // rows without exemplars render exactly as before
        let plain = sample().render_prometheus();
        assert!(!plain.contains(" # "));
        // malformed exemplar suffixes are rejected
        assert!(promparse::parse("# TYPE m counter\nm 1 # notbraces 2\n").is_err());
        assert!(promparse::parse("# TYPE m counter\nm 1 # {a=\"b\"} x\n").is_err());
        assert!(promparse::parse("# TYPE m counter\nm 1 # {a=\"b\"} 2 3\n").is_err());
    }

    #[test]
    fn fault_line_is_omitted_when_clean() {
        let mut r = sample();
        r.worker_panics = 0;
        r.worker_respawns = 0;
        r.degraded_queries = 0;
        r.overload_events = 0;
        assert!(!r.render_table().contains("faults:"));
    }

    #[test]
    fn no_batches_yields_no_drift() {
        let mut r = sample();
        r.batches = 0;
        r.predicted_s = 0.0;
        r.measured_s = 0.0;
        assert_eq!(r.drift_ratio(), None);
        assert!(r.render_table().contains("no batches executed"));
        assert_eq!(r.to_json().get("drift_ratio"), Some(&Value::Null));
    }

    #[test]
    fn roofline_flows_through_json_table_and_prometheus() {
        let r = sample();
        let back: Value = serde_json::from_str(&r.to_json().to_string()).unwrap();
        let rows = back.get("roofline").and_then(|v| v.as_array()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("lane").and_then(|v| v.as_str()), Some("f64"));
        assert_eq!(rows[0].get("coalesce").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(rows[0].get("batches").and_then(|v| v.as_u64()), Some(4));
        assert!((rows[0].get("headroom").and_then(|v| v.as_f64()).unwrap() - 3.0).abs() < 1e-9);

        let table = r.render_table();
        assert!(table.contains("roofline f64: 1 compute, 0 bandwidth, 3 coalesce, 0 queue"));
        assert!(table.contains("headroom x3.00"));
        assert!(table.contains("policy-bound 75%"));

        let prom = r.render_prometheus();
        assert!(prom.contains("# TYPE gsknn_roofline_batches_total counter"));
        assert!(prom.contains("gsknn_roofline_batches_total{lane=\"f64\",bound=\"coalesce\"} 3"));
        assert!(prom.contains("gsknn_roofline_batches_total{lane=\"f32\",bound=\"bandwidth\"} 1"));
        assert!(prom.contains("gsknn_roofline_headroom{lane=\"f64\"} 3.000000"));
    }

    #[test]
    fn shard_rows_flow_through_json_table_and_prometheus() {
        let r = sample();
        let back: Value = serde_json::from_str(&r.to_json().to_string()).unwrap();
        let rows = back.get("shards").and_then(|v| v.as_array()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("shard").and_then(|v| v.as_u64()), Some(0));
        assert_eq!(rows[0].get("batches").and_then(|v| v.as_u64()), Some(4));
        assert_eq!(
            rows[1].get("worker_respawns").and_then(|v| v.as_u64()),
            Some(1)
        );

        let table = r.render_table();
        assert!(table.contains("shard 0: 4 batches | 140 queries | 5 conns"));
        assert!(table.contains("shard 1: 2 batches | 70 queries | 4 conns | 1 panics, 1 respawns"));

        let prom = r.render_prometheus();
        assert!(prom.contains("# TYPE gsknn_shard_batches_total counter"));
        assert!(prom.contains("gsknn_shard_batches_total{shard=\"0\"} 4"));
        assert!(prom.contains("gsknn_shard_worker_respawns_total{shard=\"1\"} 1"));
        assert!(prom.contains("gsknn_shard_connections_total{shard=\"1\"} 4"));
        promparse::parse(&prom).expect("shard families parse strictly");
    }

    #[test]
    fn shardless_report_omits_shard_families() {
        let mut r = sample();
        r.shards.clear();
        let prom = r.render_prometheus();
        assert!(!prom.contains("gsknn_shard_"));
        assert!(!r.render_table().contains("shard 0:"));
        promparse::parse(&prom).expect("still parses");
    }

    #[test]
    fn label_values_are_escaped() {
        let mut r = sample();
        r.batch_targets = vec![("f\"6\\4\nx".into(), 48)];
        let prom = r.render_prometheus();
        assert!(prom.contains("gsknn_batch_target{lane=\"f\\\"6\\\\4\\nx\"} 48"));
        promparse::parse(&prom).expect("escaped exposition still parses strictly");
    }

    /// A strict text-format-0.0.4 parser: rejects malformed names,
    /// unescaped label values, missing TYPE declarations, non-numeric
    /// sample values, non-monotone histogram buckets, and `_count` rows
    /// that disagree with the `+Inf` bucket.
    mod promparse {
        #[derive(Debug, Clone)]
        pub struct Sample {
            pub name: String,
            pub labels: Vec<(String, String)>,
            pub value: f64,
            /// OpenMetrics-style exemplar (` # {labels} value` suffix),
            /// if the line carried one.
            pub exemplar: Option<(Vec<(String, String)>, f64)>,
        }

        fn valid_metric_name(s: &str) -> bool {
            let mut chars = s.chars();
            match chars.next() {
                Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
                _ => return false,
            }
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        }

        fn valid_label_name(s: &str) -> bool {
            let mut chars = s.chars();
            match chars.next() {
                Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
                _ => return false,
            }
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
        }

        fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
            let mut out = Vec::new();
            let mut chars = s.chars().peekable();
            loop {
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if !valid_label_name(&name) {
                    return Err(format!("bad label name {name:?} in {s:?}"));
                }
                if chars.next() != Some('=') || chars.next() != Some('"') {
                    return Err(format!("expected =\" after label name in {s:?}"));
                }
                let mut val = String::new();
                loop {
                    match chars.next() {
                        Some('\\') => match chars.next() {
                            Some('\\') => val.push('\\'),
                            Some('"') => val.push('"'),
                            Some('n') => val.push('\n'),
                            other => return Err(format!("bad escape {other:?} in {s:?}")),
                        },
                        Some('"') => break,
                        Some('\n') | None => return Err(format!("unterminated value in {s:?}")),
                        Some(c) => val.push(c),
                    }
                }
                out.push((name, val));
                match chars.next() {
                    Some(',') => continue,
                    None => break,
                    Some(c) => return Err(format!("unexpected {c:?} after label in {s:?}")),
                }
            }
            Ok(out)
        }

        fn parse_sample(line: &str) -> Result<Sample, String> {
            let (name, rest) = match line.find('{') {
                Some(brace) => {
                    // find the closing brace outside quotes, honoring escapes
                    let tail = &line[brace + 1..];
                    let mut in_quotes = false;
                    let mut escaped = false;
                    let mut close = None;
                    for (i, c) in tail.char_indices() {
                        if escaped {
                            escaped = false;
                        } else if c == '\\' {
                            escaped = true;
                        } else if c == '"' {
                            in_quotes = !in_quotes;
                        } else if c == '}' && !in_quotes {
                            close = Some(i);
                            break;
                        }
                    }
                    let close = close.ok_or_else(|| format!("no closing brace in {line:?}"))?;
                    let labels = parse_labels(&tail[..close])?;
                    (&line[..brace], (labels, &tail[close + 1..]))
                }
                None => {
                    let sp = line
                        .find(' ')
                        .ok_or_else(|| format!("no value in {line:?}"))?;
                    (&line[..sp], (Vec::new(), &line[sp..]))
                }
            };
            let (labels, value_part) = rest;
            if !valid_metric_name(name) {
                return Err(format!("bad metric name {name:?}"));
            }
            let value_part = value_part
                .strip_prefix(' ')
                .ok_or_else(|| format!("missing space before value in {line:?}"))?;
            // an OpenMetrics exemplar may trail the value:
            // `value # {labels} exemplar_value`
            let (value_part, exemplar) = match value_part.split_once(" # ") {
                Some((v, ex)) => {
                    let ex = ex
                        .strip_prefix('{')
                        .ok_or_else(|| format!("exemplar without labels in {line:?}"))?;
                    let (ex_labels, ex_rest) = ex
                        .split_once('}')
                        .ok_or_else(|| format!("unclosed exemplar labels in {line:?}"))?;
                    let ex_labels = parse_labels(ex_labels)?;
                    let ex_value = ex_rest
                        .strip_prefix(' ')
                        .ok_or_else(|| format!("exemplar without value in {line:?}"))?;
                    if ex_value.contains(' ') {
                        return Err(format!("trailing tokens after exemplar in {line:?}"));
                    }
                    let ex_value = ex_value
                        .parse::<f64>()
                        .map_err(|_| format!("unparseable exemplar value in {line:?}"))?;
                    (v, Some((ex_labels, ex_value)))
                }
                None => (value_part, None),
            };
            if value_part.contains(' ') {
                return Err(format!("trailing tokens in {line:?}"));
            }
            let value = match value_part {
                "+Inf" => f64::INFINITY,
                "-Inf" => f64::NEG_INFINITY,
                v => v
                    .parse::<f64>()
                    .map_err(|_| format!("unparseable value {v:?} in {line:?}"))?,
            };
            Ok(Sample {
                name: name.to_string(),
                labels,
                value,
                exemplar,
            })
        }

        /// Parse and structurally validate a full exposition.
        pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
            let mut types: Vec<(String, String)> = Vec::new();
            let mut samples: Vec<Sample> = Vec::new();
            for line in text.lines() {
                if line.is_empty() {
                    continue;
                }
                if let Some(comment) = line.strip_prefix("# ") {
                    let mut parts = comment.splitn(3, ' ');
                    let keyword = parts.next().unwrap_or("");
                    let name = parts.next().unwrap_or("");
                    let body = parts.next();
                    if !valid_metric_name(name) {
                        return Err(format!("bad name in comment {line:?}"));
                    }
                    match keyword {
                        "HELP" => {
                            if body.is_none() {
                                return Err(format!("HELP without text: {line:?}"));
                            }
                        }
                        "TYPE" => {
                            let ty = body.ok_or_else(|| format!("TYPE without type: {line:?}"))?;
                            if !["counter", "gauge", "histogram", "summary", "untyped"]
                                .contains(&ty)
                            {
                                return Err(format!("unknown type {ty:?}"));
                            }
                            if types.iter().any(|(n, _)| n == name) {
                                return Err(format!("duplicate TYPE for {name}"));
                            }
                            types.push((name.to_string(), ty.to_string()));
                        }
                        _ => return Err(format!("unknown comment keyword in {line:?}")),
                    }
                    continue;
                }
                samples.push(parse_sample(line)?);
            }
            // every sample belongs to a declared family
            for s in &samples {
                let family = types.iter().find(|(n, _)| {
                    n == &s.name
                        || ((s.name == format!("{n}_bucket")
                            || s.name == format!("{n}_sum")
                            || s.name == format!("{n}_count"))
                            && types.iter().any(|(tn, tt)| tn == n && tt == "histogram"))
                });
                let (_, ty) =
                    family.ok_or_else(|| format!("sample {} has no TYPE declaration", s.name))?;
                if ty == "counter" && !(s.value >= 0.0 && s.value.is_finite()) {
                    return Err(format!("counter {} has bad value {}", s.name, s.value));
                }
            }
            // histogram structure: per label-set (minus le), buckets are
            // emitted with increasing le and non-decreasing cumulative
            // counts, ending in +Inf, which _count must equal
            for (fam, ty) in &types {
                if ty != "histogram" {
                    continue;
                }
                let bucket_name = format!("{fam}_bucket");
                let count_name = format!("{fam}_count");
                // (label set minus `le`) -> [(le, cumulative count)]
                type BucketSeries = Vec<(Vec<(String, String)>, Vec<(f64, f64)>)>;
                let mut series: BucketSeries = Vec::new();
                for s in samples.iter().filter(|s| s.name == bucket_name) {
                    let le_raw = s
                        .labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .map(|(_, v)| v.clone())
                        .ok_or_else(|| format!("bucket without le: {fam}"))?;
                    let le = match le_raw.as_str() {
                        "+Inf" => f64::INFINITY,
                        v => v.parse::<f64>().map_err(|_| format!("bad le {v:?}"))?,
                    };
                    let mut key: Vec<(String, String)> = s
                        .labels
                        .iter()
                        .filter(|(k, _)| k != "le")
                        .cloned()
                        .collect();
                    key.sort();
                    match series.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, buckets)) => buckets.push((le, s.value)),
                        None => series.push((key, vec![(le, s.value)])),
                    }
                }
                for (key, buckets) in &series {
                    for pair in buckets.windows(2) {
                        if pair[1].0 <= pair[0].0 {
                            return Err(format!("le not increasing for {fam} {key:?}"));
                        }
                        if pair[1].1 < pair[0].1 {
                            return Err(format!("cumulative count decreases for {fam} {key:?}"));
                        }
                    }
                    let last = buckets.last().unwrap();
                    if !last.0.is_infinite() {
                        return Err(format!("{fam} {key:?} missing +Inf bucket"));
                    }
                    if let Some(count) = samples.iter().find(|s| {
                        s.name == count_name && {
                            let mut k: Vec<_> = s.labels.clone();
                            k.sort();
                            k == *key
                        }
                    }) {
                        if (count.value - last.1).abs() > 1e-9 {
                            return Err(format!("{fam} {key:?} _count != +Inf bucket"));
                        }
                    }
                }
            }
            Ok(samples)
        }
    }

    #[test]
    fn strict_parser_accepts_the_sample_exposition() {
        let samples = promparse::parse(&sample().render_prometheus()).expect("strictly parses");
        assert!(samples.iter().any(|s| s.name == "gsknn_requests_total"));
        assert!(samples
            .iter()
            .any(|s| s.name == "gsknn_roofline_batches_total"));
        assert!(samples
            .iter()
            .any(|s| s.name == "gsknn_request_latency_seconds_bucket"));
    }

    #[test]
    fn strict_parser_rejects_malformations() {
        // unescaped quote in a label value
        assert!(promparse::parse("# TYPE m counter\nm{l=\"a\"b\"} 1\n").is_err());
        // missing TYPE
        assert!(promparse::parse("orphan_metric 1\n").is_err());
        // non-numeric value
        assert!(promparse::parse("# TYPE m counter\nm nope\n").is_err());
        // negative counter
        assert!(promparse::parse("# TYPE m counter\nm -1\n").is_err());
        // non-monotone histogram buckets
        assert!(promparse::parse(
            "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n"
        )
        .is_err());
        // _count disagreeing with the +Inf bucket
        assert!(
            promparse::parse("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 4\n").is_err()
        );
    }

    fn tricky_lanes() -> Vec<String> {
        vec![
            "f64".into(),
            "f32".into(),
            "lane \"quoted\"".into(),
            "back\\slash".into(),
            "new\nline".into(),
            "sp ace}brace".into(),
        ]
    }

    fn arbitrary_report(
        lane_idx: usize,
        counters: &[u64],
        roofline_counts: [u64; 4],
        ns_samples: &[u64],
    ) -> ServeReport {
        let lane = tricky_lanes()[lane_idx % tricky_lanes().len()].clone();
        let c = |i: usize| counters.get(i).copied().unwrap_or(0);
        let mut hist = vec![0u64; BATCH_BUCKETS.len()];
        for (i, &v) in counters.iter().enumerate() {
            hist[i % BATCH_BUCKETS.len()] += v % 97;
        }
        let mut latency_hist = HistSnapshot::new();
        for &ns in ns_samples {
            latency_hist.record_ns(ns);
        }
        let total: u64 = roofline_counts.iter().sum();
        ServeReport {
            precisions: vec!["f64".into(), "f32".into()],
            requests: c(0),
            queries: c(1),
            busy: c(2),
            timeouts: c(3),
            errors: c(4),
            batches: c(5),
            worker_panics: c(6),
            worker_respawns: c(7),
            degraded_queries: c(8),
            overload_events: c(9),
            flushes: FlushCounts {
                model: c(10),
                deadline: c(11),
                drain: c(12),
            },
            roofline: vec![RooflineRow {
                lane: lane.clone(),
                counts: roofline_counts,
                headroom_sum: total as f64 * 1.5,
            }],
            // fixed shard count and raw (un-modulo'd) counters: the
            // monotone-scrapes property needs every series to persist
            // and grow with its inputs
            shards: (0..2)
                .map(|i| ShardRow {
                    shard: i,
                    batches: c(5),
                    queries: c(1),
                    worker_panics: c(6),
                    worker_respawns: c(7),
                    conns: c(0),
                })
                .collect(),
            batch_hist: hist,
            queue_high_water: c(13),
            in_flight: c(14),
            overloaded: c(15) % 2 == 1,
            latency: if ns_samples.is_empty() {
                vec![]
            } else {
                // exemplars built from the same samples, so every
                // exemplar-bearing bucket line is exercised by the
                // strict-parse property
                let store = crate::hist::Exemplars::new();
                for (i, &ns) in ns_samples.iter().enumerate() {
                    store.record(ns, 0x1000 + i as u64);
                }
                vec![LatencyRow {
                    lane: lane.clone(),
                    status: "ok".into(),
                    hist: latency_hist,
                    exemplars: store.snapshot(),
                }]
            },
            batch_targets: vec![(lane, 1 + c(16) as usize % 512)],
            predicted_s: c(17) as f64 * 1e-6,
            measured_s: c(18) as f64 * 1e-6,
            predicted_terms: vec![("compute (Tf + To)".into(), c(17) as f64 * 1e-6)],
        }
    }

    use proptest::prelude::*;

    proptest::proptest! {
        /// Any report — including hostile label values — renders an
        /// exposition the strict 0.0.4 parser accepts, with monotone
        /// histogram buckets (checked inside the parser).
        #[test]
        fn exposition_is_strictly_parseable_for_arbitrary_reports(
            inputs in (
                0usize..6,
                proptest::collection::vec(0u64..1_000_000, 19..20),
                proptest::collection::vec(0u64..50, 4..5),
                proptest::collection::vec(1u64..10_000_000_000, 0..12),
            )
        ) {
            let (lane_idx, counters, rc, ns) = inputs;
            let roofline_counts = [rc[0], rc[1], rc[2], rc[3]];
            let report = arbitrary_report(lane_idx, &counters, roofline_counts, &ns);
            let text = report.render_prometheus();
            let parsed = promparse::parse(&text);
            prop_assert!(parsed.is_ok(), "strict parse failed: {:?}", parsed.err());
            let samples = parsed.unwrap();
            // the roofline counter rows must sum to the recorded batches
            let sum: f64 = samples
                .iter()
                .filter(|s| s.name == "gsknn_roofline_batches_total")
                .map(|s| s.value)
                .sum();
            let expect: u64 = roofline_counts.iter().sum();
            prop_assert!((sum - expect as f64).abs() < 1e-9);
        }

        /// Counters only grow between scrapes: rendering a report and a
        /// strictly-larger successor yields per-series non-decreasing
        /// counter samples.
        #[test]
        fn counters_are_monotone_across_scrapes(
            inputs in (
                proptest::collection::vec(0u64..1_000_000, 19..20),
                proptest::collection::vec(0u64..1_000, 19..20),
                proptest::collection::vec(0u64..50, 4..5),
            )
        ) {
            let (base, deltas, rc) = inputs;
            let counts_a = [rc[0], rc[1], rc[2], rc[3]];
            let mut counts_b = counts_a;
            for (i, c) in counts_b.iter_mut().enumerate() {
                *c += deltas[i % deltas.len()] % 7;
            }
            let grown: Vec<u64> = base
                .iter()
                .zip(deltas.iter())
                .map(|(b, d)| b + d)
                .collect();
            let a = arbitrary_report(0, &base, counts_a, &[1_000_000]);
            let b = arbitrary_report(0, &grown, counts_b, &[1_000_000, 2_000_000]);
            let counter_families: Vec<String> = {
                let mut fams = Vec::new();
                for line in a.render_prometheus().lines() {
                    if let Some(rest) = line.strip_prefix("# TYPE ") {
                        let mut parts = rest.split(' ');
                        let name = parts.next().unwrap().to_string();
                        if parts.next() == Some("counter") {
                            fams.push(name);
                        }
                    }
                }
                fams
            };
            let sa = promparse::parse(&a.render_prometheus()).unwrap();
            let sb = promparse::parse(&b.render_prometheus()).unwrap();
            for s in &sa {
                if !counter_families.contains(&s.name) {
                    continue;
                }
                let successor = sb
                    .iter()
                    .find(|t| t.name == s.name && t.labels == s.labels);
                prop_assert!(successor.is_some(), "series {} vanished", s.name);
                prop_assert!(
                    successor.unwrap().value >= s.value,
                    "counter {} shrank: {} -> {}",
                    s.name,
                    s.value,
                    successor.unwrap().value
                );
            }
        }
    }
}
