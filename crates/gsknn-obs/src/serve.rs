//! Serving-layer observability: the [`ServeReport`] summarizing one
//! server run (or a live snapshot via the wire `Stats` op).
//!
//! The report mirrors what the §2.6 model promises the batch coalescer:
//! batches flushed on the *model* trigger should run near the predicted
//! asymptotic efficiency, so the report joins the summed model-predicted
//! batch cost (itemized with [`gsknn_core::Model::tm_terms`] by the
//! server's workers) against the summed measured kernel seconds — the
//! same predicted-vs-measured drift discipline as [`crate::ProfileReport`],
//! aggregated over every flush instead of one profiled problem.

use crate::hist::HistSnapshot;
use serde_json::Value;

/// End-to-end latency histogram for one (lane, terminal status) pair.
#[derive(Clone, Debug)]
pub struct LatencyRow {
    /// Precision lane (`"f64"` / `"f32"`).
    pub lane: String,
    /// Terminal wire status label (`"ok"`, `"busy"`, `"timeout"`, …).
    pub status: String,
    /// Log-bucketed receive-to-reply latency distribution.
    pub hist: HistSnapshot,
}

/// Batch-size histogram bucket upper bounds (inclusive); the last bucket
/// is open-ended. Shared between the server's counters and the report so
/// both sides agree on the binning.
pub const BATCH_BUCKETS: [usize; 10] = [1, 2, 4, 8, 16, 32, 64, 128, 256, usize::MAX];

/// Index of the histogram bucket a batch of `m` queries falls into.
pub fn batch_bucket(m: usize) -> usize {
    BATCH_BUCKETS
        .iter()
        .position(|&hi| m <= hi)
        .unwrap_or(BATCH_BUCKETS.len() - 1)
}

/// Why batches were flushed, by trigger.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlushCounts {
    /// The §2.6 model predicted the batch reached the efficient regime
    /// (or the configured hard batch cap, which clamps the model target).
    pub model: u64,
    /// The oldest request's latency budget expired first.
    pub deadline: u64,
    /// Shutdown drain: whatever was queued went out in final batches.
    pub drain: u64,
}

impl FlushCounts {
    /// Fraction of steady-state flushes that were model-triggered
    /// (`model / (model + deadline)`; 0 when neither fired). Drain
    /// flushes are excluded — they say nothing about the policy.
    pub fn coalesce_ratio(&self) -> f64 {
        let steady = self.model + self.deadline;
        if steady == 0 {
            0.0
        } else {
            self.model as f64 / steady as f64
        }
    }
}

/// One server run (or live snapshot) summarized: traffic, admission
/// control, coalescing behavior and model drift.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Element precisions served (informational; e.g. `["f64", "f32"]`).
    pub precisions: Vec<String>,
    /// Request frames received, all ops.
    pub requests: u64,
    /// Query points answered with a neighbor row.
    pub queries: u64,
    /// Admission rejections (bounded queue full → `Busy`).
    pub busy: u64,
    /// Requests that missed their latency deadline.
    pub timeouts: u64,
    /// Malformed or failed requests answered with `Error`.
    pub errors: u64,
    /// Kernel batches executed.
    pub batches: u64,
    /// Worker batches that panicked; every in-flight request in the
    /// batch was answered with `InternalError` instead of being dropped.
    pub worker_panics: u64,
    /// Workers respawned with a fresh executor after a panic.
    pub worker_respawns: u64,
    /// f64 queries answered from the f32 lane while shedding load.
    pub degraded_queries: u64,
    /// Transitions into the overloaded (degraded) state.
    pub overload_events: u64,
    /// Flush counts by trigger.
    pub flushes: FlushCounts,
    /// Batch-size histogram over [`BATCH_BUCKETS`].
    pub batch_hist: Vec<u64>,
    /// Highest simultaneous pending-query count observed.
    pub queue_high_water: u64,
    /// Query points in flight at snapshot time (gauge).
    pub in_flight: u64,
    /// Whether the overload detector held the degraded state at
    /// snapshot time (gauge).
    pub overloaded: bool,
    /// End-to-end request latency histograms, one row per non-empty
    /// (lane × terminal status) pair. Latency covers receive → reply
    /// written, measured at the server.
    pub latency: Vec<LatencyRow>,
    /// Model-derived batch-size targets per precision lane
    /// (`(precision, m*)`): the smallest batch the §2.6 model predicts
    /// reaches the configured fraction of asymptotic GFLOPS.
    pub batch_targets: Vec<(String, usize)>,
    /// Summed model-predicted batch cost (seconds) over all flushes.
    pub predicted_s: f64,
    /// Summed measured kernel wall time (seconds) over all flushes.
    pub measured_s: f64,
    /// The predicted cost itemized by model term (summed
    /// [`gsknn_core::Model::tm_terms`] rows plus the compute term),
    /// aggregated over all flushed batches.
    pub predicted_terms: Vec<(String, f64)>,
}

impl ServeReport {
    /// Measured over predicted batch cost (`> 1`: the model was
    /// optimistic). `None` until at least one batch has run.
    pub fn drift_ratio(&self) -> Option<f64> {
        if self.predicted_s > 0.0 && self.batches > 0 {
            Some(self.measured_s / self.predicted_s)
        } else {
            None
        }
    }

    /// JSON value for machine consumption (the `Stats` wire op body).
    pub fn to_json(&self) -> Value {
        let hist: Vec<Value> = self
            .batch_hist
            .iter()
            .zip(BATCH_BUCKETS)
            .map(|(&count, hi)| {
                Value::Object(vec![
                    (
                        "le".into(),
                        if hi == usize::MAX {
                            Value::String("inf".into())
                        } else {
                            Value::from(hi)
                        },
                    ),
                    ("count".into(), Value::from(count)),
                ])
            })
            .collect();
        let targets: Vec<Value> = self
            .batch_targets
            .iter()
            .map(|(p, m)| {
                Value::Object(vec![
                    ("precision".into(), Value::String(p.clone())),
                    ("batch_target".into(), Value::from(*m)),
                ])
            })
            .collect();
        let terms: Vec<Value> = self
            .predicted_terms
            .iter()
            .map(|(name, s)| {
                Value::Object(vec![
                    ("term".into(), Value::String(name.clone())),
                    ("predicted_s".into(), Value::from(*s)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("experiment".into(), Value::from("serve")),
            (
                "precisions".into(),
                Value::Array(
                    self.precisions
                        .iter()
                        .map(|p| Value::String(p.clone()))
                        .collect(),
                ),
            ),
            ("requests".into(), Value::from(self.requests)),
            ("queries".into(), Value::from(self.queries)),
            ("busy".into(), Value::from(self.busy)),
            ("timeouts".into(), Value::from(self.timeouts)),
            ("errors".into(), Value::from(self.errors)),
            ("batches".into(), Value::from(self.batches)),
            ("worker_panics".into(), Value::from(self.worker_panics)),
            ("worker_respawns".into(), Value::from(self.worker_respawns)),
            (
                "degraded_queries".into(),
                Value::from(self.degraded_queries),
            ),
            ("overload_events".into(), Value::from(self.overload_events)),
            ("flush_model".into(), Value::from(self.flushes.model)),
            ("flush_deadline".into(), Value::from(self.flushes.deadline)),
            ("flush_drain".into(), Value::from(self.flushes.drain)),
            (
                "coalesce_ratio".into(),
                Value::from(self.flushes.coalesce_ratio()),
            ),
            ("batch_hist".into(), Value::Array(hist)),
            (
                "queue_high_water".into(),
                Value::from(self.queue_high_water),
            ),
            ("in_flight".into(), Value::from(self.in_flight)),
            ("overloaded".into(), Value::from(self.overloaded)),
            (
                "latency".into(),
                Value::Array(
                    self.latency
                        .iter()
                        .map(|row| {
                            let mut obj = vec![
                                ("lane".into(), Value::String(row.lane.clone())),
                                ("status".into(), Value::String(row.status.clone())),
                            ];
                            if let Value::Object(fields) = row.hist.to_json() {
                                obj.extend(fields);
                            }
                            Value::Object(obj)
                        })
                        .collect(),
                ),
            ),
            ("batch_targets".into(), Value::Array(targets)),
            ("predicted_s".into(), Value::from(self.predicted_s)),
            ("measured_s".into(), Value::from(self.measured_s)),
            (
                "drift_ratio".into(),
                self.drift_ratio().map(Value::from).unwrap_or(Value::Null),
            ),
            ("predicted_terms".into(), Value::Array(terms)),
        ])
    }

    /// Human-readable report.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "serve: {} requests | {} queries answered | {} busy | {} timeouts | {} errors\n",
            self.requests, self.queries, self.busy, self.timeouts, self.errors
        ));
        out.push_str(&format!(
            "batches: {} (flush: {} model, {} deadline, {} drain | coalesce ratio {:.2})\n",
            self.batches,
            self.flushes.model,
            self.flushes.deadline,
            self.flushes.drain,
            self.flushes.coalesce_ratio()
        ));
        if self.worker_panics + self.worker_respawns + self.degraded_queries + self.overload_events
            > 0
        {
            out.push_str(&format!(
                "faults: {} worker panics | {} respawns | {} degraded queries | {} overload events\n",
                self.worker_panics, self.worker_respawns, self.degraded_queries, self.overload_events
            ));
        }
        let targets: Vec<String> = self
            .batch_targets
            .iter()
            .map(|(p, m)| format!("{p}: m* = {m}"))
            .collect();
        out.push_str(&format!(
            "queue high water: {} | model batch targets: {}\n",
            self.queue_high_water,
            targets.join(", ")
        ));
        out.push_str("  batch size   count\n");
        for (&count, hi) in self.batch_hist.iter().zip(BATCH_BUCKETS) {
            if count == 0 {
                continue;
            }
            let label = if hi == usize::MAX {
                "   >256".to_string()
            } else {
                format!("{hi:>7}")
            };
            out.push_str(&format!("  <= {label} {count:>7}\n"));
        }
        if !self.latency.is_empty() {
            out.push_str("  latency (lane/status)     n       p50       p90       p99      p999\n");
            for row in &self.latency {
                let ms = |v: Option<u64>| match v {
                    Some(ns) => format!("{:>8.2}ms", ns as f64 / 1e6),
                    None => "       n/a".to_string(),
                };
                out.push_str(&format!(
                    "  {:<22} {:>5} {} {} {} {}\n",
                    format!("{}/{}", row.lane, row.status),
                    row.hist.count(),
                    ms(row.hist.p50_ns()),
                    ms(row.hist.p90_ns()),
                    ms(row.hist.p99_ns()),
                    ms(row.hist.p999_ns()),
                ));
            }
        }
        match self.drift_ratio() {
            Some(r) => out.push_str(&format!(
                "batch cost: predicted {:.3} ms | measured {:.3} ms | drift x{:.2}\n",
                self.predicted_s * 1e3,
                self.measured_s * 1e3,
                r
            )),
            None => out.push_str("batch cost: no batches executed\n"),
        }
        for (name, s) in &self.predicted_terms {
            out.push_str(&format!("  {:<32} {:>10.3} ms\n", name, s * 1e3));
        }
        out
    }

    /// Prometheus text exposition (version 0.0.4): counters, gauges and
    /// cumulative latency histograms, scrapeable via the `Metrics` wire
    /// op or the server's `--metrics-addr` HTTP listener. Only buckets
    /// that gained samples are emitted (plus `+Inf`); the cumulative
    /// counts stay correct on any `le` grid.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        };
        counter(
            "gsknn_requests_total",
            "Request frames received (all ops).",
            self.requests,
        );
        counter(
            "gsknn_queries_total",
            "Query points answered with a neighbor row.",
            self.queries,
        );
        counter(
            "gsknn_busy_total",
            "Requests bounced by admission control.",
            self.busy,
        );
        counter(
            "gsknn_timeouts_total",
            "Requests whose latency budget expired before the kernel ran.",
            self.timeouts,
        );
        counter(
            "gsknn_errors_total",
            "Malformed or failed requests.",
            self.errors,
        );
        counter(
            "gsknn_batches_total",
            "Kernel batches executed.",
            self.batches,
        );
        counter(
            "gsknn_worker_panics_total",
            "Worker batches that panicked.",
            self.worker_panics,
        );
        counter(
            "gsknn_worker_respawns_total",
            "Workers rebuilt after a panic.",
            self.worker_respawns,
        );
        counter(
            "gsknn_degraded_queries_total",
            "f64 queries answered from the f32 lane while shedding load.",
            self.degraded_queries,
        );
        counter(
            "gsknn_overload_events_total",
            "Transitions into the overloaded state.",
            self.overload_events,
        );
        out.push_str(
            "# HELP gsknn_flushes_total Coalescer flushes by trigger.\n# TYPE gsknn_flushes_total counter\n",
        );
        for (reason, v) in [
            ("model", self.flushes.model),
            ("deadline", self.flushes.deadline),
            ("drain", self.flushes.drain),
        ] {
            out.push_str(&format!("gsknn_flushes_total{{reason=\"{reason}\"}} {v}\n"));
        }
        let mut gauge = |name: &str, help: &str, v: String| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
            ));
        };
        gauge(
            "gsknn_in_flight",
            "Query points currently admitted and unanswered.",
            self.in_flight.to_string(),
        );
        gauge(
            "gsknn_overloaded",
            "1 while the overload detector holds the degraded state.",
            u64::from(self.overloaded).to_string(),
        );
        gauge(
            "gsknn_queue_high_water",
            "Highest simultaneous in-flight query count observed.",
            self.queue_high_water.to_string(),
        );
        gauge(
            "gsknn_coalesce_ratio",
            "Fraction of steady-state flushes triggered by the model.",
            format!("{:.6}", self.flushes.coalesce_ratio()),
        );
        out.push_str(
            "# HELP gsknn_batch_target Model batch-size target m* per lane.\n# TYPE gsknn_batch_target gauge\n",
        );
        for (lane, m) in &self.batch_targets {
            out.push_str(&format!("gsknn_batch_target{{lane=\"{lane}\"}} {m}\n"));
        }
        out.push_str(
            "# HELP gsknn_batch_size Coalesced batch sizes.\n# TYPE gsknn_batch_size histogram\n",
        );
        let mut cum = 0u64;
        for (&count, hi) in self.batch_hist.iter().zip(BATCH_BUCKETS) {
            cum += count;
            if count == 0 && hi != usize::MAX {
                continue;
            }
            let le = if hi == usize::MAX {
                "+Inf".to_string()
            } else {
                hi.to_string()
            };
            out.push_str(&format!("gsknn_batch_size_bucket{{le=\"{le}\"}} {cum}\n"));
        }
        out.push_str(&format!("gsknn_batch_size_count {cum}\n"));
        if !self.latency.is_empty() {
            out.push_str(
                "# HELP gsknn_request_latency_seconds End-to-end request latency (receive to reply written).\n# TYPE gsknn_request_latency_seconds histogram\n",
            );
            for row in &self.latency {
                let labels = format!("lane=\"{}\",status=\"{}\"", row.lane, row.status);
                let mut cum = 0u64;
                for (le_ns, count) in row.hist.nonzero_buckets() {
                    cum += count;
                    let le = if le_ns == u64::MAX {
                        "+Inf".to_string()
                    } else {
                        format!("{:.9}", le_ns as f64 / 1e9)
                    };
                    out.push_str(&format!(
                        "gsknn_request_latency_seconds_bucket{{{labels},le=\"{le}\"}} {cum}\n"
                    ));
                }
                out.push_str(&format!(
                    "gsknn_request_latency_seconds_bucket{{{labels},le=\"+Inf\"}} {cum}\n"
                ));
                out.push_str(&format!(
                    "gsknn_request_latency_seconds_sum{{{labels}}} {:.9}\n",
                    row.hist.sum_ns as f64 / 1e9
                ));
                out.push_str(&format!(
                    "gsknn_request_latency_seconds_count{{{labels}}} {}\n",
                    row.hist.count()
                ));
            }
        }
        out.push_str(&format!(
            "# HELP gsknn_batch_cost_predicted_seconds_total Summed model-predicted batch cost.\n# TYPE gsknn_batch_cost_predicted_seconds_total counter\ngsknn_batch_cost_predicted_seconds_total {:.9}\n",
            self.predicted_s
        ));
        out.push_str(&format!(
            "# HELP gsknn_batch_cost_measured_seconds_total Summed measured kernel wall time.\n# TYPE gsknn_batch_cost_measured_seconds_total counter\ngsknn_batch_cost_measured_seconds_total {:.9}\n",
            self.measured_s
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeReport {
        let mut hist = vec![0u64; BATCH_BUCKETS.len()];
        hist[batch_bucket(1)] += 2;
        hist[batch_bucket(24)] += 3;
        hist[batch_bucket(4096)] += 1;
        ServeReport {
            precisions: vec!["f64".into(), "f32".into()],
            requests: 42,
            queries: 210,
            busy: 3,
            timeouts: 1,
            errors: 2,
            batches: 6,
            worker_panics: 1,
            worker_respawns: 1,
            degraded_queries: 5,
            overload_events: 1,
            flushes: FlushCounts {
                model: 4,
                deadline: 1,
                drain: 1,
            },
            batch_hist: hist,
            queue_high_water: 17,
            in_flight: 4,
            overloaded: true,
            latency: vec![
                LatencyRow {
                    lane: "f64".into(),
                    status: "ok".into(),
                    hist: {
                        let mut h = HistSnapshot::new();
                        for ns in [900_000, 1_100_000, 2_000_000, 40_000_000] {
                            h.record_ns(ns);
                        }
                        h
                    },
                },
                LatencyRow {
                    lane: "f32".into(),
                    status: "timeout".into(),
                    hist: {
                        let mut h = HistSnapshot::new();
                        h.record_ns(55_000_000);
                        h
                    },
                },
            ],
            batch_targets: vec![("f64".into(), 48), ("f32".into(), 96)],
            predicted_s: 0.010,
            measured_s: 0.013,
            predicted_terms: vec![
                ("compute (Tf + To)".into(), 0.004),
                ("pack Rc + R2c".into(), 0.006),
            ],
        }
    }

    #[test]
    fn buckets_cover_all_sizes_monotonically() {
        assert_eq!(batch_bucket(1), 0);
        assert_eq!(batch_bucket(2), 1);
        assert_eq!(batch_bucket(3), 2);
        assert_eq!(batch_bucket(256), 8);
        assert_eq!(batch_bucket(257), 9);
        assert_eq!(batch_bucket(usize::MAX), BATCH_BUCKETS.len() - 1);
        let mut prev = 0;
        for m in 1..2000 {
            let b = batch_bucket(m);
            assert!(b >= prev, "bucket must not decrease at m={m}");
            prev = b;
        }
    }

    #[test]
    fn coalesce_ratio_ignores_drain() {
        let f = FlushCounts {
            model: 3,
            deadline: 1,
            drain: 100,
        };
        assert!((f.coalesce_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(FlushCounts::default().coalesce_ratio(), 0.0);
    }

    #[test]
    fn json_round_trips_counters() {
        let r = sample();
        let text = r.to_json().to_string();
        let back: Value = serde_json::from_str(&text).expect("serve JSON parses");
        assert_eq!(back.get("requests").and_then(|v| v.as_u64()), Some(42));
        assert_eq!(back.get("flush_model").and_then(|v| v.as_u64()), Some(4));
        assert_eq!(back.get("flush_deadline").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(back.get("busy").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(back.get("worker_panics").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(
            back.get("degraded_queries").and_then(|v| v.as_u64()),
            Some(5)
        );
        assert_eq!(
            back.get("overload_events").and_then(|v| v.as_u64()),
            Some(1)
        );
        assert!((back.get("coalesce_ratio").and_then(|v| v.as_f64()).unwrap() - 0.8).abs() < 1e-12);
        assert_eq!(
            back.get("batch_hist")
                .and_then(|v| v.as_array())
                .map(|a| a.len()),
            Some(BATCH_BUCKETS.len())
        );
        let drift = back.get("drift_ratio").and_then(|v| v.as_f64()).unwrap();
        assert!((drift - 1.3).abs() < 1e-9);
    }

    #[test]
    fn render_mentions_every_section() {
        let text = sample().render_table();
        assert!(text.contains("42 requests"));
        assert!(text.contains("coalesce ratio 0.80"));
        assert!(text.contains("m* = 48"));
        assert!(text.contains("drift x1.30"));
        assert!(text.contains("pack Rc + R2c"));
        assert!(text.contains("1 worker panics"));
        assert!(text.contains("5 degraded queries"));
    }

    #[test]
    fn json_carries_latency_rows() {
        let r = sample();
        let back: Value = serde_json::from_str(&r.to_json().to_string()).unwrap();
        assert_eq!(back.get("in_flight").and_then(|v| v.as_u64()), Some(4));
        let rows = back.get("latency").and_then(|v| v.as_array()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("lane").and_then(|v| v.as_str()), Some("f64"));
        assert_eq!(rows[0].get("count").and_then(|v| v.as_u64()), Some(4));
        assert!(rows[0].get("p99_us").and_then(|v| v.as_f64()).unwrap() > 0.0);
    }

    #[test]
    fn render_table_includes_latency_quantiles() {
        let text = sample().render_table();
        assert!(text.contains("f64/ok"));
        assert!(text.contains("f32/timeout"));
        assert!(text.contains("p99"));
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let text = sample().render_prometheus();
        assert!(text.contains("# TYPE gsknn_requests_total counter"));
        assert!(text.contains("gsknn_requests_total 42"));
        assert!(text.contains("gsknn_queries_total 210"));
        assert!(text.contains("gsknn_flushes_total{reason=\"model\"} 4"));
        assert!(text.contains("gsknn_in_flight 4"));
        assert!(text.contains("gsknn_overloaded 1"));
        assert!(text.contains("gsknn_batch_target{lane=\"f64\"} 48"));
        assert!(text.contains("gsknn_request_latency_seconds_count{lane=\"f64\",status=\"ok\"} 4"));
        assert!(text.contains(
            "gsknn_request_latency_seconds_bucket{lane=\"f64\",status=\"ok\",le=\"+Inf\"} 4"
        ));
        // cumulative bucket counts never decrease within a series
        let mut prev = 0u64;
        for line in text.lines().filter(|l| {
            l.starts_with("gsknn_request_latency_seconds_bucket{lane=\"f64\",status=\"ok\"")
        }) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= prev, "non-monotone cumulative count in {line}");
            prev = v;
        }
        // every non-comment line is `name{labels} value` or `name value`
        for line in text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable sample value in {line}"
            );
            assert!(parts.next().is_some());
        }
    }

    #[test]
    fn fault_line_is_omitted_when_clean() {
        let mut r = sample();
        r.worker_panics = 0;
        r.worker_respawns = 0;
        r.degraded_queries = 0;
        r.overload_events = 0;
        assert!(!r.render_table().contains("faults:"));
    }

    #[test]
    fn no_batches_yields_no_drift() {
        let mut r = sample();
        r.batches = 0;
        r.predicted_s = 0.0;
        r.measured_s = 0.0;
        assert_eq!(r.drift_ratio(), None);
        assert!(r.render_table().contains("no batches executed"));
        assert_eq!(r.to_json().get("drift_ratio"), Some(&Value::Null));
    }
}
