//! Lock-free log-bucketed latency histograms.
//!
//! The serving stack records one end-to-end latency per request, per
//! (lane × terminal status) pair, on the connection-handler hot path —
//! so recording must be a single relaxed atomic increment, never a lock.
//! Buckets are log-linear over nanoseconds: each power-of-two octave is
//! split into [`SUB_BUCKETS`] linear sub-buckets, giving ≤ 25% relative
//! bucket width across the full `u64` range (sub-microsecond pings up to
//! minute-long stalls) with a fixed [`NUM_BUCKETS`]-slot table. That is
//! the same mantissa-bits scheme HDR-style histograms use, reduced to
//! two mantissa bits so the whole table stays cache-resident.
//!
//! [`LatencyHistogram`] is the shared atomic recorder; [`HistSnapshot`]
//! is its frozen view — mergeable across histograms (lane aggregation,
//! multi-server rollups) and queryable for p50/p90/p99/p999. Quantile
//! estimates return the midpoint of the bucket holding the true
//! quantile, so they are exact to within one bucket width (property-
//! tested below).

use serde_json::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per power-of-two octave (2 mantissa bits).
pub const SUB_BUCKETS: usize = 4;

/// Values `0..LINEAR_CUTOFF` get one exact bucket each; above that the
/// log-linear scheme takes over.
const LINEAR_CUTOFF: u64 = 2 * SUB_BUCKETS as u64; // 8

/// Total bucket count covering every `u64` nanosecond value:
/// 8 exact buckets for 0..8 ns, then 4 sub-buckets for each of the
/// 61 octaves `[2^3, 2^4) .. [2^63, 2^64)`.
pub const NUM_BUCKETS: usize = LINEAR_CUTOFF as usize + (64 - 3) * SUB_BUCKETS;

/// Index of the bucket holding `ns`. Total over all of `u64`.
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    if ns < LINEAR_CUTOFF {
        return ns as usize;
    }
    let exp = 63 - ns.leading_zeros() as usize; // floor(log2), >= 3
    let sub = ((ns >> (exp - 2)) & (SUB_BUCKETS as u64 - 1)) as usize;
    LINEAR_CUTOFF as usize + (exp - 3) * SUB_BUCKETS + sub
}

/// Half-open range `[lo, hi)` of bucket `idx`. The last bucket's `hi`
/// saturates to `u64::MAX` (treated as +inf: that bucket also holds
/// `u64::MAX` itself).
#[inline]
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    assert!(idx < NUM_BUCKETS, "bucket index {idx} out of range");
    if (idx as u64) < LINEAR_CUTOFF {
        return (idx as u64, idx as u64 + 1);
    }
    let g = (idx - LINEAR_CUTOFF as usize) / SUB_BUCKETS;
    let sub = (idx - LINEAR_CUTOFF as usize) % SUB_BUCKETS;
    let exp = g + 3;
    let lo = ((SUB_BUCKETS + sub) as u64) << (exp - 2);
    let hi = lo.saturating_add(1u64 << (exp - 2));
    (lo, hi)
}

/// A lock-free log-bucketed latency histogram: record with one relaxed
/// atomic add, snapshot without stopping writers.
pub struct LatencyHistogram {
    counts: Box<[AtomicU64]>,
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Empty histogram (one allocation, done once at server start).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency in nanoseconds. Lock-free; safe from any
    /// thread.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.counts[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record one latency as a [`Duration`] (saturating at `u64` ns,
    /// ~584 years).
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Frozen copy for querying, merging and serialization.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// A frozen histogram: per-bucket counts plus the exact sum of recorded
/// values. Mergeable (bucket-wise addition) and queryable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts, indexed by [`bucket_index`].
    pub counts: Vec<u64>,
    /// Exact sum of all recorded nanosecond values.
    pub sum_ns: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            counts: vec![0; NUM_BUCKETS],
            sum_ns: 0,
        }
    }
}

impl HistSnapshot {
    /// Empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record into a snapshot directly (tests and offline merging).
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[bucket_index(ns)] += 1;
        self.sum_ns += ns;
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fold `other` into `self`: the result is indistinguishable from a
    /// snapshot that recorded both sample streams.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum_ns += other.sum_ns;
    }

    /// Mean of recorded values in nanoseconds (`None` when empty).
    pub fn mean_ns(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum_ns as f64 / n as f64)
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) in nanoseconds: the
    /// midpoint of the bucket containing the true quantile value, so the
    /// estimate is exact to within one bucket width (≤ 25% relative).
    /// `None` when empty.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let (lo, hi) = bucket_bounds(i);
                return Some(if hi == u64::MAX {
                    lo
                } else {
                    lo + (hi - lo) / 2
                });
            }
        }
        unreachable!("rank <= total must land in a bucket");
    }

    /// Median estimate in nanoseconds.
    pub fn p50_ns(&self) -> Option<u64> {
        self.quantile_ns(0.50)
    }
    /// 90th-percentile estimate in nanoseconds.
    pub fn p90_ns(&self) -> Option<u64> {
        self.quantile_ns(0.90)
    }
    /// 99th-percentile estimate in nanoseconds.
    pub fn p99_ns(&self) -> Option<u64> {
        self.quantile_ns(0.99)
    }
    /// 99.9th-percentile estimate in nanoseconds.
    pub fn p999_ns(&self) -> Option<u64> {
        self.quantile_ns(0.999)
    }

    /// Non-empty buckets as `(upper_bound_ns, count)`; the open top
    /// bucket reports `u64::MAX`.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_bounds(i).1, c))
            .collect()
    }

    /// JSON value: count, sum, quantiles in microseconds, and the
    /// non-empty buckets (`le_ns` upper bounds).
    pub fn to_json(&self) -> Value {
        let us = |v: Option<u64>| match v {
            Some(ns) => Value::from(ns as f64 / 1e3),
            None => Value::Null,
        };
        let buckets: Vec<Value> = self
            .nonzero_buckets()
            .into_iter()
            .map(|(le, count)| {
                Value::Object(vec![
                    ("le_ns".into(), Value::from(le)),
                    ("count".into(), Value::from(count)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("count".into(), Value::from(self.count())),
            ("sum_ns".into(), Value::from(self.sum_ns)),
            ("p50_us".into(), us(self.p50_ns())),
            ("p90_us".into(), us(self.p90_ns())),
            ("p99_us".into(), us(self.p99_ns())),
            ("p999_us".into(), us(self.p999_ns())),
            ("buckets".into(), Value::Array(buckets)),
        ])
    }
}

/// One histogram bucket's exemplar: the slowest sample that landed in
/// the bucket and the trace id that produced it — how a latency spike in
/// the exposition links straight to its distributed trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BucketExemplar {
    /// The bucket's upper bound in nanoseconds ([`bucket_bounds`]`.1`;
    /// the open top bucket reports `u64::MAX`), matching the `le` label
    /// of the corresponding `_bucket` exposition series.
    pub le_ns: u64,
    /// The slowest recorded sample in the bucket, nanoseconds.
    pub ns: u64,
    /// Trace id of that sample.
    pub trace_id: u64,
}

/// Lock-free per-bucket exemplar store, shadowing a
/// [`LatencyHistogram`]: [`Exemplars::record`] keeps the slowest sample
/// (and its trace id) per bucket with relaxed atomics, so the recording
/// cost on the reply hot path is one load plus, rarely, one CAS — the
/// max for a bucket settles quickly at steady state.
///
/// Under a race two recorders may interleave so the stored trace id
/// belongs to a marginally faster sample than the stored maximum; both
/// remain *real* samples from the bucket, which is all an exemplar
/// promises.
pub struct Exemplars {
    /// Per-bucket `(max_ns + 1, trace_id)`; 0 in the first slot means
    /// the bucket has no exemplar yet (a 0 ns sample encodes as 1).
    slots: Box<[(AtomicU64, AtomicU64)]>,
}

impl Default for Exemplars {
    fn default() -> Self {
        Exemplars {
            slots: (0..NUM_BUCKETS)
                .map(|_| (AtomicU64::new(0), AtomicU64::new(0)))
                .collect(),
        }
    }
}

impl Exemplars {
    /// Empty store (one allocation, done once at server start).
    pub fn new() -> Self {
        Self::default()
    }

    /// Offer one sample; kept iff it is the slowest seen for its bucket.
    #[inline]
    pub fn record(&self, ns: u64, trace_id: u64) {
        let slot = &self.slots[bucket_index(ns)];
        let key = ns.saturating_add(1);
        let mut cur = slot.0.load(Ordering::Relaxed);
        while key > cur {
            match slot
                .0
                .compare_exchange_weak(cur, key, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    slot.1.store(trace_id, Ordering::Relaxed);
                    break;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Non-empty buckets' exemplars, in bucket order.
    pub fn snapshot(&self) -> Vec<BucketExemplar> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, (max, id))| {
                let key = max.load(Ordering::Relaxed);
                (key > 0).then(|| BucketExemplar {
                    le_ns: bucket_bounds(i).1,
                    ns: key - 1,
                    trace_id: id.load(Ordering::Relaxed),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_scheme_tiles_the_line() {
        // consecutive buckets share an edge, starting at 0
        assert_eq!(bucket_bounds(0).0, 0);
        for i in 0..NUM_BUCKETS - 1 {
            assert_eq!(
                bucket_bounds(i).1,
                bucket_bounds(i + 1).0,
                "gap/overlap between buckets {i} and {}",
                i + 1
            );
        }
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn known_values_land_where_expected() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(7), 7);
        assert_eq!(bucket_index(8), 8); // first log-linear bucket [8,10)
        assert_eq!(bucket_index(9), 8);
        assert_eq!(bucket_index(10), 9);
        assert_eq!(bucket_index(15), 11);
        assert_eq!(bucket_index(16), 12);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn relative_width_is_bounded() {
        // every log-linear bucket is at most 25% of its lower bound wide
        for i in LINEAR_CUTOFF as usize..NUM_BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(i);
            assert!(hi - lo <= lo / 4 + 1, "bucket {i}: [{lo}, {hi})");
        }
    }

    #[test]
    fn atomic_and_snapshot_agree() {
        let h = LatencyHistogram::new();
        for ns in [0, 1, 999, 1_000_000, 3_141_592_653] {
            h.record_ns(ns);
        }
        h.record(Duration::from_millis(5));
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(h.count(), 6);
        assert_eq!(s.sum_ns, 1_000_000 + 999 + 1 + 3_141_592_653 + 5_000_000);
    }

    #[test]
    fn quantiles_of_a_point_mass() {
        let mut s = HistSnapshot::new();
        for _ in 0..1000 {
            s.record_ns(1_000_000); // 1 ms
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let est = s.quantile_ns(q).unwrap();
            let (lo, hi) = bucket_bounds(bucket_index(1_000_000));
            assert!(est >= lo && est < hi, "q={q}: {est} not in [{lo},{hi})");
        }
        assert_eq!(HistSnapshot::new().quantile_ns(0.5), None);
        assert_eq!(HistSnapshot::new().mean_ns(), None);
    }

    #[test]
    fn json_carries_counts_and_quantiles() {
        let mut s = HistSnapshot::new();
        for ns in [1_000, 2_000, 4_000, 1_000_000] {
            s.record_ns(ns);
        }
        let text = s.to_json().to_string();
        let back: Value = serde_json::from_str(&text).expect("hist JSON parses");
        assert_eq!(back.get("count").and_then(|v| v.as_u64()), Some(4));
        assert!(back.get("p50_us").and_then(|v| v.as_f64()).unwrap() > 0.0);
        let buckets = back.get("buckets").and_then(|v| v.as_array()).unwrap();
        assert_eq!(buckets.len(), 4);
        let total: u64 = buckets
            .iter()
            .map(|b| b.get("count").and_then(|v| v.as_u64()).unwrap())
            .sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn exemplars_keep_the_slowest_per_bucket() {
        let e = Exemplars::new();
        assert!(e.snapshot().is_empty());
        // two samples in one bucket ([917504, 1048576)): slower wins
        assert_eq!(bucket_index(950_000), bucket_index(1_000_000));
        e.record(950_000, 0xAAAA);
        e.record(1_000_000, 0xBBBB);
        e.record(0, 0xCCCC); // 0 ns still records (bucket 0)
        e.record(5_000_000_000, 0xDDDD);
        let snap = e.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(
            snap[0],
            BucketExemplar {
                le_ns: 1,
                ns: 0,
                trace_id: 0xCCCC
            }
        );
        let mid = snap
            .iter()
            .find(|x| x.ns == 1_000_000)
            .expect("slower sample kept");
        assert_eq!(mid.trace_id, 0xBBBB);
        assert_eq!(mid.le_ns, bucket_bounds(bucket_index(1_000_000)).1);
        // a faster later sample does not displace the resident
        e.record(960_000, 0xEEEE);
        assert_eq!(
            e.snapshot()
                .iter()
                .find(|x| x.ns == 1_000_000)
                .unwrap()
                .trace_id,
            0xBBBB
        );
    }

    proptest! {
        /// Bucket boundaries are exhaustive and non-overlapping: every
        /// value falls in exactly the bucket whose [lo, hi) contains it.
        #[test]
        fn buckets_are_exhaustive_and_disjoint(
            (base, shift) in (0u64..u64::MAX, 0u32..64)
        ) {
            let v = base >> shift; // bias coverage toward every octave
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            prop_assert!(v >= lo, "{v} below bucket {idx} = [{lo},{hi})");
            prop_assert!(v < hi || hi == u64::MAX, "{v} above bucket {idx} = [{lo},{hi})");
            // and no other bucket claims it: neighbors exclude v
            if idx > 0 {
                let (_, prev_hi) = bucket_bounds(idx - 1);
                prop_assert!(prev_hi <= v);
            }
            if idx + 1 < NUM_BUCKETS {
                let (next_lo, _) = bucket_bounds(idx + 1);
                prop_assert!(v < next_lo);
            }
        }

        /// merge(a, b) is indistinguishable from recording a ∪ b.
        #[test]
        fn merge_equals_union(
            (a, b) in (
                proptest::collection::vec(0u64..1u64 << 40, 0..64),
                proptest::collection::vec(0u64..1u64 << 40, 0..64),
            )
        ) {
            let mut ha = HistSnapshot::new();
            let mut hb = HistSnapshot::new();
            let mut hu = HistSnapshot::new();
            for &v in &a { ha.record_ns(v); hu.record_ns(v); }
            for &v in &b { hb.record_ns(v); hu.record_ns(v); }
            ha.merge(&hb);
            prop_assert_eq!(ha, hu);
        }

        /// Quantile estimates bracket the true order statistic within
        /// one bucket width.
        #[test]
        fn quantile_brackets_truth(
            (values, qi) in (
                proptest::collection::vec(0u64..1u64 << 40, 1..128),
                0usize..4,
            )
        ) {
            let q = [0.5, 0.9, 0.99, 0.999][qi];
            let mut s = HistSnapshot::new();
            for &v in &values { s.record_ns(v); }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let rank = ((q * sorted.len() as f64).ceil() as usize)
                .clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let est = s.quantile_ns(q).unwrap();
            // the estimate's bucket must contain the true value, so the
            // error is bounded by that bucket's width
            let idx = bucket_index(truth);
            let (lo, hi) = bucket_bounds(idx);
            prop_assert!(est >= lo && (est < hi || hi == u64::MAX),
                "q={} est={} truth={} bucket=[{},{})", q, est, truth, lo, hi);
            let width = hi.saturating_sub(lo);
            prop_assert!(est.abs_diff(truth) <= width,
                "q={} est={} truth={} width={}", q, est, truth, width);
        }
    }
}
