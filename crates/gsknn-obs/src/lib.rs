//! # gsknn-obs — observability for the GSKNN kernel
//!
//! Turns the raw probes of `gsknn-core` into reports:
//!
//! * **Phase profiling** — the per-phase wall times recorded by
//!   [`gsknn_core::obs::PhaseSet`] (gather-pack R/Q, rank-dc
//!   micro-kernel, selection, writeback), with span counts and shares.
//! * **Model drift** — each measured phase joined against the matching
//!   itemized terms of the §2.6 performance model
//!   ([`gsknn_core::Model::tm_terms`]), reporting predicted vs measured
//!   seconds and the drift ratio per component, plus realized vs
//!   predicted GFLOPS and whether the model's Var#1/Var#6 choice was
//!   empirically right ([`profile_run`]).
//! * **Scheduler telemetry** — per-worker predicted vs realized load and
//!   the LPT predicted-vs-realized makespan error from
//!   [`gsknn_core::scheduler::run_task_parallel_traced`], summarized by
//!   [`SchedulerReport`].
//! * **Serving telemetry** — traffic, admission-control, and batch-
//!   coalescing counters from the `gsknn-serve` query service, joined
//!   against the model-predicted batch cost ([`ServeReport`]), plus
//!   per-lane × per-status end-to-end latency histograms and a
//!   Prometheus-style text exposition.
//! * **Latency histograms** — lock-free log-bucketed recorders with
//!   mergeable snapshots and p50/p90/p99/p999 estimates ([`hist`]).
//! * **Request traces** — span timelines for individual served
//!   requests, a keep-the-slowest ring, and Chrome trace-event JSON
//!   export ([`trace`]).
//! * **Roofline attribution** — per-batch classification against the
//!   §2.6 machine asymptotes (compute- / bandwidth- / coalesce- /
//!   queue-bound) with a headroom gauge ([`roofline`]), aggregated per
//!   lane in [`ServeReport`].
//! * **Load time-series** — per-second snapshots of serving activity
//!   (arrival rate, queue depth, batch-size mean, flush reasons,
//!   aggregate kernel-phase split) and the `gsknn-cli top` rendering
//!   ([`timeseries`]).
//!
//! All reports render as text tables and export as JSON (the `gsknn
//! profile` CLI subcommand writes them under `bench_out/`).
//!
//! The crate's default `obs` feature forwards to `gsknn-core/obs`,
//! compiling the phase probes into the kernel. Without it the profiler
//! still times totals, but phase rows are zero and reports carry
//! `obs_enabled = false`.

pub mod hist;
pub mod profile;
pub mod report;
pub mod roofline;
pub mod serve;
pub mod timeseries;
pub mod trace;

pub use hist::{BucketExemplar, Exemplars, HistSnapshot, LatencyHistogram};
pub use profile::{profile_run, profile_synthetic};
pub use report::{
    DriftRow, PhaseRow, ProfileReport, SchedulerReport, StageBreakdown, VariantTiming, WorkerRow,
};
pub use roofline::{classify, BoundClass, RooflineInputs, RooflineRow, RooflineVerdict};
pub use serve::{batch_bucket, FlushCounts, LatencyRow, ServeReport, BATCH_BUCKETS};
pub use timeseries::{parse_timeseries, render_top, timeseries_json, LoadSample};
pub use trace::{align_spans, chrome_trace_json, Trace, TraceRing, TraceSpan};

#[cfg(test)]
mod sched_tests {
    use super::*;
    use dataset::{uniform, DistanceKind};
    use gsknn_core::scheduler::{run_task_parallel_traced, KnnTask};
    use gsknn_core::{GsknnConfig, MachineParams};

    #[test]
    fn scheduler_report_summarizes_traced_run() {
        let x = uniform(120, 8, 33);
        let tasks: Vec<KnnTask> = (0..6)
            .map(|t| KnnTask {
                q_idx: (t * 20..(t + 1) * 20).collect(),
                r_idx: (0..120).collect(),
                k: 4,
            })
            .collect();
        let (_, tel) = run_task_parallel_traced(
            &x,
            &tasks,
            DistanceKind::SqL2,
            &GsknnConfig::default(),
            MachineParams::ivy_bridge_1core(),
            3,
        );
        let report = SchedulerReport::from_telemetry(&tel);
        assert_eq!(report.tasks, 6);
        assert_eq!(report.workers.len(), 3);
        assert_eq!(report.workers.iter().map(|w| w.tasks).sum::<usize>(), 6);
        assert!(report.predicted_makespan > 0.0);
        assert!(report.realized_makespan > 0.0);
        assert!(report.load_imbalance >= 1.0 - 1e-12);
        assert!(report.stats.tiles > 0);

        let text = report.render_table();
        assert!(text.contains("scheduler: 6 tasks over 3 workers"));
        assert!(text.contains("makespan: predicted"));

        let json = report.to_json().to_string();
        let back = serde_json::from_str(&json).expect("scheduler JSON parses");
        assert_eq!(back.get("tasks").and_then(|v| v.as_u64()), Some(6));
        assert_eq!(
            back.get("workers")
                .and_then(|v| v.as_array())
                .map(|a| a.len()),
            Some(3)
        );
    }
}
