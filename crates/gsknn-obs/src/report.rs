//! Report types: measured phase breakdowns joined against the §2.6
//! model's itemized predictions, plus renderers (text table, JSON).

use gsknn_core::buffers::KernelStats;
use gsknn_core::obs::{Phase, PhaseSet};
use serde::Serialize;
use serde_json::Value;

/// One measured phase of the kernel.
#[derive(Clone, Debug)]
pub struct PhaseRow {
    /// Phase display name ([`Phase::name`]).
    pub phase: &'static str,
    /// Accumulated seconds.
    pub seconds: f64,
    /// Number of spans recorded.
    pub spans: u64,
    /// Fraction of the summed phase time (0.0 when nothing measured).
    pub share: f64,
}

/// Build phase rows (with shares) from a [`PhaseSet`].
pub fn phase_rows(phases: &PhaseSet) -> Vec<PhaseRow> {
    let total = phases.total_seconds();
    Phase::ALL
        .iter()
        .map(|&p| PhaseRow {
            phase: p.name(),
            seconds: phases.seconds(p),
            spans: phases.count(p),
            share: if total > 0.0 {
                phases.seconds(p) / total
            } else {
                0.0
            },
        })
        .collect()
}

/// Per-stage time attribution of the distributed serving path: where a
/// routed query's wall clock went, split into the four cross-tier
/// stages the stitched traces expose. Totals are cumulative nanoseconds
/// (counter semantics — they only grow), so the same breakdown backs
/// the `gsknn_router_stage_ns_total{stage}` Prometheus family, the
/// RouterReport table and the bench attribution percentages.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Wire + router fan-out/collect time not attributable to any other
    /// stage (the non-negative residual of the routed total).
    pub network_ns: u64,
    /// Backend-side non-kernel time: decode, admission, coalesce wait,
    /// reply write — queueing in the broad sense.
    pub backend_wait_ns: u64,
    /// Backend kernel phases (the `kernel: *` spans).
    pub kernel_ns: u64,
    /// Router-side merge of the per-partition heaps.
    pub merge_ns: u64,
}

impl StageBreakdown {
    /// Stage labels, in display/exposition order.
    pub const STAGES: [&'static str; 4] = ["network", "backend_wait", "kernel", "merge"];

    /// Totals in [`StageBreakdown::STAGES`] order.
    pub fn totals(&self) -> [u64; 4] {
        [
            self.network_ns,
            self.backend_wait_ns,
            self.kernel_ns,
            self.merge_ns,
        ]
    }

    /// Sum over all stages, ns.
    pub fn total_ns(&self) -> u64 {
        self.totals().iter().sum()
    }

    /// Per-stage share of the summed total as percentages, in
    /// [`StageBreakdown::STAGES`] order (all zero when nothing recorded).
    pub fn percentages(&self) -> [f64; 4] {
        let total = self.total_ns();
        if total == 0 {
            return [0.0; 4];
        }
        self.totals().map(|ns| ns as f64 * 100.0 / total as f64)
    }

    /// Accumulate another breakdown (e.g. one routed query's attribution
    /// into the server-lifetime counters).
    pub fn add(&mut self, other: &StageBreakdown) {
        self.network_ns += other.network_ns;
        self.backend_wait_ns += other.backend_wait_ns;
        self.kernel_ns += other.kernel_ns;
        self.merge_ns += other.merge_ns;
    }

    /// One table line: `network 42.1% · backend wait 30.0% · …` with the
    /// absolute milliseconds in parentheses.
    pub fn render_line(&self) -> String {
        let pct = self.percentages();
        let ms = self.totals().map(|ns| ns as f64 / 1e6);
        format!(
            "network {:.1}% ({:.1} ms) · backend wait {:.1}% ({:.1} ms) · kernel {:.1}% ({:.1} ms) · merge {:.1}% ({:.1} ms)",
            pct[0], ms[0], pct[1], ms[1], pct[2], ms[2], pct[3], ms[3]
        )
    }

    /// JSON object: per-stage ns totals plus the percentage split.
    pub fn to_json(&self) -> Value {
        let pct = self.percentages();
        Value::Object(vec![
            ("network_ns".into(), Value::from(self.network_ns)),
            ("backend_wait_ns".into(), Value::from(self.backend_wait_ns)),
            ("kernel_ns".into(), Value::from(self.kernel_ns)),
            ("merge_ns".into(), Value::from(self.merge_ns)),
            ("network_pct".into(), Value::from(pct[0])),
            ("backend_wait_pct".into(), Value::from(pct[1])),
            ("kernel_pct".into(), Value::from(pct[2])),
            ("merge_pct".into(), Value::from(pct[3])),
        ])
    }
}

/// One model-vs-measured component of the drift join. `terms` lists the
/// [`gsknn_core::Model::tm_terms`] names (plus `"compute (Tf + To)"`)
/// whose predictions were summed into `predicted`, so the report is an
/// auditable join, not a lookalike table.
#[derive(Clone, Debug)]
pub struct DriftRow {
    /// Component label.
    pub component: &'static str,
    /// Model term names folded into `predicted`.
    pub terms: Vec<String>,
    /// Predicted seconds (sum of `terms`).
    pub predicted: f64,
    /// Measured seconds (phase span totals).
    pub measured: f64,
}

impl DriftRow {
    /// Measured-over-predicted drift ratio (`None` when the model
    /// predicts zero for this component).
    pub fn ratio(&self) -> Option<f64> {
        if self.predicted > 0.0 {
            Some(self.measured / self.predicted)
        } else {
            None
        }
    }
}

/// Predicted and measured total runtime of one variant.
#[derive(Clone, Debug)]
pub struct VariantTiming {
    /// Variant name (`"Var#1"` / `"Var#6"`).
    pub variant: String,
    /// §2.6 predicted total seconds.
    pub predicted: f64,
    /// Best-of-reps measured wall seconds.
    pub measured: f64,
}

/// Full profile of one kNN problem: phase breakdown, model drift, GFLOPS
/// and the model's variant-choice verdict.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// Queries.
    pub m: usize,
    /// References.
    pub n: usize,
    /// Dimension.
    pub d: usize,
    /// Neighbors kept.
    pub k: usize,
    /// Element type profiled (`"f64"` / `"f32"`).
    pub precision: &'static str,
    /// Distance kind name.
    pub kind: String,
    /// Timing repetitions per variant (best kept).
    pub reps: usize,
    /// Whether phase probes were compiled in.
    pub obs_enabled: bool,
    /// Variant the §2.6 model picks for this problem.
    pub variant_predicted: String,
    /// Empirically fastest variant (min measured total).
    pub variant_empirical: String,
    /// Did the model pick the empirically fastest variant?
    pub model_choice_correct: bool,
    /// Per-variant predicted vs measured totals.
    pub variants: Vec<VariantTiming>,
    /// Measured total of the model-chosen variant (seconds).
    pub measured_total: f64,
    /// Predicted total of the model-chosen variant (seconds).
    pub predicted_total: f64,
    /// Realized GFLOPS of the model-chosen variant.
    pub measured_gflops: f64,
    /// Predicted GFLOPS of the model-chosen variant.
    pub predicted_gflops: f64,
    /// Measured phase breakdown of the model-chosen variant.
    pub phases: Vec<PhaseRow>,
    /// Model-vs-measured drift per component.
    pub drift: Vec<DriftRow>,
    /// Kernel counters of the profiled run.
    pub stats: KernelStats,
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

impl ProfileReport {
    /// JSON value for machine consumption (`bench_out/` artifacts).
    pub fn to_json(&self) -> Value {
        let phases: Vec<Value> = self
            .phases
            .iter()
            .map(|r| {
                Value::Object(vec![
                    ("phase".into(), Value::from(r.phase)),
                    ("seconds".into(), Value::from(r.seconds)),
                    ("spans".into(), Value::from(r.spans)),
                    ("share".into(), Value::from(r.share)),
                ])
            })
            .collect();
        let drift: Vec<Value> = self
            .drift
            .iter()
            .map(|r| {
                Value::Object(vec![
                    ("component".into(), Value::from(r.component)),
                    ("model_terms".into(), Value::from(r.terms.clone())),
                    ("predicted_s".into(), Value::from(r.predicted)),
                    ("measured_s".into(), Value::from(r.measured)),
                    (
                        "drift_ratio".into(),
                        r.ratio().map(Value::from).unwrap_or(Value::Null),
                    ),
                ])
            })
            .collect();
        let variants: Vec<Value> = self
            .variants
            .iter()
            .map(|v| {
                Value::Object(vec![
                    ("variant".into(), Value::from(v.variant.clone())),
                    ("predicted_s".into(), Value::from(v.predicted)),
                    ("measured_s".into(), Value::from(v.measured)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("experiment".into(), Value::from("profile")),
            ("m".into(), Value::from(self.m)),
            ("n".into(), Value::from(self.n)),
            ("d".into(), Value::from(self.d)),
            ("k".into(), Value::from(self.k)),
            ("precision".into(), Value::from(self.precision)),
            ("kind".into(), Value::from(self.kind.clone())),
            ("reps".into(), Value::from(self.reps)),
            ("obs_enabled".into(), Value::from(self.obs_enabled)),
            (
                "variant_predicted".into(),
                Value::from(self.variant_predicted.clone()),
            ),
            (
                "variant_empirical".into(),
                Value::from(self.variant_empirical.clone()),
            ),
            (
                "model_choice_correct".into(),
                Value::from(self.model_choice_correct),
            ),
            ("variants".into(), Value::Array(variants)),
            ("measured_total_s".into(), Value::from(self.measured_total)),
            (
                "predicted_total_s".into(),
                Value::from(self.predicted_total),
            ),
            ("measured_gflops".into(), Value::from(self.measured_gflops)),
            (
                "predicted_gflops".into(),
                Value::from(self.predicted_gflops),
            ),
            ("phases".into(), Value::Array(phases)),
            ("drift".into(), Value::Array(drift)),
            ("stats".into(), self.stats.to_value()),
        ])
    }

    /// Human-readable report (the `gsknn profile` output).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "profile: m={} n={} d={} k={} {} kind={} (best of {} reps)\n",
            self.m, self.n, self.d, self.k, self.precision, self.kind, self.reps
        ));
        out.push_str(&format!(
            "variant: model picks {} | empirically fastest {} | model {}\n",
            self.variant_predicted,
            self.variant_empirical,
            if self.model_choice_correct {
                "CORRECT"
            } else {
                "WRONG"
            }
        ));
        for v in &self.variants {
            out.push_str(&format!(
                "  {:<6} predicted {:>12}  measured {:>12}  ({:.2}x)\n",
                v.variant,
                fmt_secs(v.predicted),
                fmt_secs(v.measured),
                if v.predicted > 0.0 {
                    v.measured / v.predicted
                } else {
                    0.0
                }
            ));
        }
        out.push_str(&format!(
            "total ({}): measured {} @ {:.2} GFLOPS | predicted {} @ {:.2} GFLOPS\n",
            self.variant_predicted,
            fmt_secs(self.measured_total),
            self.measured_gflops,
            fmt_secs(self.predicted_total),
            self.predicted_gflops,
        ));
        if !self.obs_enabled {
            out.push_str("phases: (obs feature disabled — phase probes compiled out)\n");
        } else {
            out.push_str("phase breakdown:\n");
            out.push_str(&format!(
                "  {:<16} {:>12} {:>10} {:>7}\n",
                "phase", "time", "spans", "share"
            ));
            for r in &self.phases {
                out.push_str(&format!(
                    "  {:<16} {:>12} {:>10} {:>6.1}%\n",
                    r.phase,
                    fmt_secs(r.seconds),
                    r.spans,
                    r.share * 100.0
                ));
            }
            out.push_str("model drift (measured / predicted):\n");
            out.push_str(&format!(
                "  {:<22} {:>12} {:>12} {:>7}\n",
                "component", "predicted", "measured", "drift"
            ));
            for r in &self.drift {
                let drift = match r.ratio() {
                    Some(x) => format!("{x:.2}x"),
                    None => "--".to_string(),
                };
                out.push_str(&format!(
                    "  {:<22} {:>12} {:>12} {:>7}\n",
                    r.component,
                    fmt_secs(r.predicted),
                    fmt_secs(r.measured),
                    drift
                ));
            }
        }
        out.push_str(&format!(
            "kernel stats: {} tiles, filter rate {:.3}, selection rate {:.3}\n",
            self.stats.tiles,
            self.stats.filter_rate(),
            self.stats.selection_rate()
        ));
        out
    }
}

/// Per-worker row of a scheduler report.
#[derive(Clone, Debug)]
pub struct WorkerRow {
    /// Worker index.
    pub worker: usize,
    /// Tasks assigned.
    pub tasks: usize,
    /// Predicted load (seconds).
    pub predicted: f64,
    /// Realized load (seconds).
    pub realized: f64,
}

/// Scheduler telemetry rendered for reporting: how well the model-guided
/// LPT schedule predicted per-worker load and the makespan.
#[derive(Clone, Debug)]
pub struct SchedulerReport {
    /// Number of tasks scheduled.
    pub tasks: usize,
    /// Per-worker loads.
    pub workers: Vec<WorkerRow>,
    /// LPT makespan under predicted costs (seconds).
    pub predicted_makespan: f64,
    /// Realized makespan (seconds).
    pub realized_makespan: f64,
    /// Relative makespan error `(realized - predicted) / predicted`.
    pub makespan_error: f64,
    /// Mean absolute relative task-cost estimation error.
    pub mean_abs_cost_error: f64,
    /// Realized max-over-mean worker load (1.0 = balanced).
    pub load_imbalance: f64,
    /// Kernel counters merged across all tasks.
    pub stats: KernelStats,
}

impl SchedulerReport {
    /// Summarize raw telemetry from
    /// [`gsknn_core::scheduler::run_task_parallel_traced`].
    pub fn from_telemetry(tel: &gsknn_core::scheduler::SchedulerTelemetry) -> Self {
        let workers = tel
            .worker_predicted
            .iter()
            .zip(&tel.worker_realized)
            .enumerate()
            .map(|(w, (&predicted, &realized))| WorkerRow {
                worker: w,
                tasks: tel.tasks.iter().filter(|t| t.worker == w).count(),
                predicted,
                realized,
            })
            .collect();
        SchedulerReport {
            tasks: tel.tasks.len(),
            workers,
            predicted_makespan: tel.predicted_makespan,
            realized_makespan: tel.realized_makespan,
            makespan_error: tel.makespan_error(),
            mean_abs_cost_error: tel.mean_abs_cost_error(),
            load_imbalance: tel.load_imbalance(),
            stats: tel.stats,
        }
    }

    /// JSON value for machine consumption.
    pub fn to_json(&self) -> Value {
        let workers: Vec<Value> = self
            .workers
            .iter()
            .map(|w| {
                Value::Object(vec![
                    ("worker".into(), Value::from(w.worker)),
                    ("tasks".into(), Value::from(w.tasks)),
                    ("predicted_s".into(), Value::from(w.predicted)),
                    ("realized_s".into(), Value::from(w.realized)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("experiment".into(), Value::from("scheduler")),
            ("tasks".into(), Value::from(self.tasks)),
            ("workers".into(), Value::Array(workers)),
            (
                "predicted_makespan_s".into(),
                Value::from(self.predicted_makespan),
            ),
            (
                "realized_makespan_s".into(),
                Value::from(self.realized_makespan),
            ),
            ("makespan_error".into(), Value::from(self.makespan_error)),
            (
                "mean_abs_cost_error".into(),
                Value::from(self.mean_abs_cost_error),
            ),
            ("load_imbalance".into(), Value::from(self.load_imbalance)),
            ("stats".into(), self.stats.to_value()),
        ])
    }

    /// Human-readable report.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "scheduler: {} tasks over {} workers (model-guided LPT)\n",
            self.tasks,
            self.workers.len()
        ));
        out.push_str(&format!(
            "  {:<7} {:>6} {:>14} {:>14}\n",
            "worker", "tasks", "predicted", "realized"
        ));
        for w in &self.workers {
            out.push_str(&format!(
                "  {:<7} {:>6} {:>14} {:>14}\n",
                w.worker,
                w.tasks,
                fmt_secs(w.predicted),
                fmt_secs(w.realized)
            ));
        }
        out.push_str(&format!(
            "makespan: predicted {} | realized {} | error {:+.1}%\n",
            fmt_secs(self.predicted_makespan),
            fmt_secs(self.realized_makespan),
            self.makespan_error * 100.0
        ));
        out.push_str(&format!(
            "task-cost estimation: mean abs error {:.1}% | realized load imbalance {:.2}\n",
            self.mean_abs_cost_error * 100.0,
            self.load_imbalance
        ));
        out
    }
}

#[cfg(test)]
mod stage_tests {
    use super::*;

    #[test]
    fn stage_breakdown_percentages_and_json() {
        let mut b = StageBreakdown {
            network_ns: 10_000_000,
            backend_wait_ns: 30_000_000,
            kernel_ns: 50_000_000,
            merge_ns: 10_000_000,
        };
        assert_eq!(b.total_ns(), 100_000_000);
        let pct = b.percentages();
        assert_eq!(pct, [10.0, 30.0, 50.0, 10.0]);
        b.add(&StageBreakdown {
            network_ns: 1,
            backend_wait_ns: 2,
            kernel_ns: 3,
            merge_ns: 4,
        });
        assert_eq!(b.kernel_ns, 50_000_003);

        let back: Value =
            serde_json::from_str(&b.to_json().to_string()).expect("stage JSON parses");
        assert_eq!(
            back.get("backend_wait_ns").and_then(|v| v.as_u64()),
            Some(30_000_002)
        );
        assert!(back.get("kernel_pct").and_then(|v| v.as_f64()).unwrap() > 49.0);
        let line = b.render_line();
        assert!(line.contains("network"), "{line}");
        assert!(line.contains("merge"), "{line}");

        // an empty breakdown divides by nothing
        assert_eq!(StageBreakdown::default().percentages(), [0.0; 4]);
        assert_eq!(StageBreakdown::STAGES[2], "kernel");
    }
}
