//! Roofline bottleneck attribution for executed batches.
//!
//! Every flushed batch is classified against the §2.6 machine asymptotes
//! ([`gsknn_core::MachineParams`], rescaled per scalar width by
//! `for_scalar`): did it run at the compute roof, at the bandwidth roof,
//! or below both because the *serving policy* — not the kernel — starved
//! it? Four classes:
//!
//! * **compute-bound** — the batch was full-sized and its measured phase
//!   profile is dominated by the rank-dc/selection compute phases.
//! * **bandwidth-bound** — full-sized, but packing/writeback traffic
//!   dominates the measured phases (the `τb` roof is the binding one).
//! * **coalesce-bound** — the coalescer's deadline (or a shutdown drain)
//!   fired before the batch reached its model target `m*`: the kernel ran
//!   in the inefficient small-`m` regime the coalescer exists to avoid.
//! * **queue-bound** — the batch was full-sized yet at flush time at
//!   least one more full batch of work was already waiting: requests pay
//!   queueing delay, adding workers/shards (not batching) is the lever.
//!
//! The **headroom** gauge is the paper's asymptote ÷ achieved on the
//! binding resource — "how many × faster this batch could have gone at
//! the roof". Aggerates of both (per lane × class batch counts, mean
//! headroom) ride in [`crate::ServeReport`].

use serde_json::Value;

/// Which roof (or policy limit) bound a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundClass {
    /// Compute phases dominate a full-sized batch.
    Compute,
    /// Memory-movement phases dominate a full-sized batch.
    Bandwidth,
    /// Flushed undersized by deadline/drain — starved by arrivals.
    Coalesce,
    /// Full-sized, but a further full batch was already backlogged.
    Queue,
}

impl BoundClass {
    /// All classes, in counter-index order.
    pub const ALL: [BoundClass; 4] = [
        BoundClass::Compute,
        BoundClass::Bandwidth,
        BoundClass::Coalesce,
        BoundClass::Queue,
    ];

    /// Stable label used in JSON and the Prometheus `bound` label.
    pub fn name(self) -> &'static str {
        match self {
            BoundClass::Compute => "compute",
            BoundClass::Bandwidth => "bandwidth",
            BoundClass::Coalesce => "coalesce",
            BoundClass::Queue => "queue",
        }
    }

    /// Index into per-class counter arrays (`ALL[idx] == self`).
    pub fn index(self) -> usize {
        match self {
            BoundClass::Compute => 0,
            BoundClass::Bandwidth => 1,
            BoundClass::Coalesce => 2,
            BoundClass::Queue => 3,
        }
    }
}

/// Everything the classifier needs about one executed batch. All rates
/// are in the units of the *scaled* machine (after `for_scalar`), so f32
/// and f64 lanes are each measured against their own roofs.
#[derive(Clone, Copy, Debug)]
pub struct RooflineInputs {
    /// Useful flops of the batch (model count × kernel calls).
    pub flops: f64,
    /// Slow-memory bytes moved (packing + writeback, model count).
    pub bytes: f64,
    /// Measured wall seconds for the whole batch execution.
    pub measured_s: f64,
    /// Measured seconds in memory-movement phases (pack R/Q, writeback).
    pub mem_phase_s: f64,
    /// Measured seconds in compute phases (rank-dc, selection).
    pub compute_phase_s: f64,
    /// Machine peak flops/s (`τf`).
    pub peak_flops_per_s: f64,
    /// Machine peak bytes/s (element bytes ÷ `τb`).
    pub peak_bytes_per_s: f64,
    /// Query points in the batch.
    pub batch_m: usize,
    /// The lane's model-derived target `m*`.
    pub target_m: usize,
    /// Flush reason was deadline or drain (not model-target).
    pub deadline_flush: bool,
    /// Query points still waiting (in flight beyond this batch) at flush.
    pub backlog: usize,
}

/// The classifier's output for one batch.
#[derive(Clone, Copy, Debug)]
pub struct RooflineVerdict {
    /// The binding roof / policy limit.
    pub class: BoundClass,
    /// Asymptote ÷ achieved on the binding resource (≥ 1 when the model
    /// is honest; < 1 means the machine beat the model's roof).
    pub headroom: f64,
}

fn ratio(peak: f64, achieved: f64) -> f64 {
    if achieved > 0.0 && peak > 0.0 {
        peak / achieved
    } else {
        1.0
    }
}

/// Classify one executed batch; see the module docs for the rules.
pub fn classify(inp: &RooflineInputs) -> RooflineVerdict {
    let achieved_flops = if inp.measured_s > 0.0 {
        inp.flops / inp.measured_s
    } else {
        0.0
    };
    let achieved_bytes = if inp.measured_s > 0.0 {
        inp.bytes / inp.measured_s
    } else {
        0.0
    };
    let flop_headroom = ratio(inp.peak_flops_per_s, achieved_flops);
    let byte_headroom = ratio(inp.peak_bytes_per_s, achieved_bytes);

    // Policy-bound classes first: an undersized deadline/drain flush ran
    // the kernel below its efficient regime no matter what the phase
    // profile says, and a full batch with a full batch still queued is
    // wait-dominated from the request's point of view.
    if inp.deadline_flush && inp.batch_m < inp.target_m {
        return RooflineVerdict {
            class: BoundClass::Coalesce,
            headroom: flop_headroom,
        };
    }
    if inp.backlog >= inp.target_m.max(1) {
        return RooflineVerdict {
            class: BoundClass::Queue,
            headroom: flop_headroom,
        };
    }

    // Full-sized batch: pick the roof by the measured phase split when
    // phases were recorded, else by which utilization is closer to 1.
    let phase_total = inp.mem_phase_s + inp.compute_phase_s;
    let bandwidth_bound = if phase_total > 0.0 {
        inp.mem_phase_s > inp.compute_phase_s
    } else {
        byte_headroom < flop_headroom
    };
    if bandwidth_bound {
        RooflineVerdict {
            class: BoundClass::Bandwidth,
            headroom: byte_headroom,
        }
    } else {
        RooflineVerdict {
            class: BoundClass::Compute,
            headroom: flop_headroom,
        }
    }
}

/// Per-lane roofline aggregate: batch counts per bound class plus the
/// running headroom sum (gauge = `headroom_sum / total()`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RooflineRow {
    /// Lane label (`"f64"` / `"f32"`).
    pub lane: String,
    /// Batch counts indexed by [`BoundClass::index`].
    pub counts: [u64; 4],
    /// Sum of per-batch headroom values (mean = sum / total).
    pub headroom_sum: f64,
}

impl RooflineRow {
    /// A zeroed row for `lane`.
    pub fn new(lane: &str) -> Self {
        RooflineRow {
            lane: lane.to_string(),
            counts: [0; 4],
            headroom_sum: 0.0,
        }
    }

    /// Total classified batches (sums the per-class counts).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean headroom across the lane's batches, `None` when no batch ran.
    pub fn headroom_mean(&self) -> Option<f64> {
        let n = self.total();
        if n == 0 {
            None
        } else {
            Some(self.headroom_sum / n as f64)
        }
    }

    /// Share of batches bound by the serving policy (coalesce + queue)
    /// rather than a hardware roof. `None` when no batch ran.
    pub fn policy_bound_share(&self) -> Option<f64> {
        let n = self.total();
        if n == 0 {
            return None;
        }
        let policy =
            self.counts[BoundClass::Coalesce.index()] + self.counts[BoundClass::Queue.index()];
        Some(policy as f64 / n as f64)
    }

    /// JSON object: `{"lane", per-class counts, "batches", "headroom"}`.
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![("lane".to_string(), Value::from(self.lane.clone()))];
        for class in BoundClass::ALL {
            pairs.push((
                class.name().to_string(),
                Value::from(self.counts[class.index()]),
            ));
        }
        pairs.push(("batches".to_string(), Value::from(self.total())));
        pairs.push((
            "headroom".to_string(),
            match self.headroom_mean() {
                Some(h) => Value::from(h),
                None => Value::Null,
            },
        ));
        Value::Object(pairs)
    }

    /// Parse a row written by [`RooflineRow::to_json`].
    pub fn from_json(v: &Value) -> Option<RooflineRow> {
        let lane = v.get("lane")?.as_str()?.to_string();
        let mut counts = [0u64; 4];
        for class in BoundClass::ALL {
            counts[class.index()] = v.get(class.name())?.as_u64()?;
        }
        let total: u64 = counts.iter().sum();
        let headroom_sum = v
            .get("headroom")
            .and_then(|h| h.as_f64())
            .map(|mean| mean * total as f64)
            .unwrap_or(0.0);
        Some(RooflineRow {
            lane,
            counts,
            headroom_sum,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_batch_inputs() -> RooflineInputs {
        RooflineInputs {
            flops: 1.0e9,
            bytes: 1.0e8,
            measured_s: 0.1,
            mem_phase_s: 0.02,
            compute_phase_s: 0.07,
            peak_flops_per_s: 28.32e9,
            peak_bytes_per_s: 8.0 / 2.2e-9,
            batch_m: 64,
            target_m: 64,
            deadline_flush: false,
            backlog: 0,
        }
    }

    #[test]
    fn class_names_and_indices_round_trip() {
        for (i, class) in BoundClass::ALL.into_iter().enumerate() {
            assert_eq!(class.index(), i);
            assert_eq!(BoundClass::ALL[class.index()], class);
        }
        let names: Vec<_> = BoundClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names, ["compute", "bandwidth", "coalesce", "queue"]);
    }

    #[test]
    fn undersized_deadline_flush_is_coalesce_bound() {
        let inp = RooflineInputs {
            batch_m: 3,
            target_m: 64,
            deadline_flush: true,
            ..full_batch_inputs()
        };
        let v = classify(&inp);
        assert_eq!(v.class, BoundClass::Coalesce);
        // 1e9 flops in 0.1 s = 10 GFLOPS vs 28.32 peak
        assert!((v.headroom - 2.832).abs() < 1e-9, "{}", v.headroom);
    }

    #[test]
    fn full_batch_with_backlog_is_queue_bound() {
        let inp = RooflineInputs {
            backlog: 128,
            ..full_batch_inputs()
        };
        assert_eq!(classify(&inp).class, BoundClass::Queue);
    }

    #[test]
    fn deadline_flush_at_target_is_not_coalesce_bound() {
        // the deadline fired, but the batch had already reached m*: the
        // kernel ran in its efficient regime
        let inp = RooflineInputs {
            deadline_flush: true,
            ..full_batch_inputs()
        };
        assert_eq!(classify(&inp).class, BoundClass::Compute);
    }

    #[test]
    fn phase_split_picks_the_roof() {
        let compute = classify(&full_batch_inputs());
        assert_eq!(compute.class, BoundClass::Compute);
        let bw = classify(&RooflineInputs {
            mem_phase_s: 0.08,
            compute_phase_s: 0.01,
            ..full_batch_inputs()
        });
        assert_eq!(bw.class, BoundClass::Bandwidth);
        // bandwidth headroom is peak_bytes / (bytes / measured)
        let achieved = 1.0e8 / 0.1;
        let expect = (8.0 / 2.2e-9) / achieved;
        assert!((bw.headroom - expect).abs() < 1e-6 * expect);
    }

    #[test]
    fn degenerate_measurements_fall_back_to_unit_headroom() {
        let v = classify(&RooflineInputs {
            measured_s: 0.0,
            ..full_batch_inputs()
        });
        assert_eq!(v.headroom, 1.0);
    }

    #[test]
    fn row_aggregates_and_round_trips_json() {
        let mut row = RooflineRow::new("f32");
        for _ in 0..3 {
            row.counts[BoundClass::Coalesce.index()] += 1;
            row.headroom_sum += 4.0;
        }
        row.counts[BoundClass::Compute.index()] += 1;
        row.headroom_sum += 2.0;
        assert_eq!(row.total(), 4);
        assert_eq!(row.headroom_mean(), Some(3.5));
        assert_eq!(row.policy_bound_share(), Some(0.75));
        let back = RooflineRow::from_json(&row.to_json()).expect("parses");
        assert_eq!(back.lane, "f32");
        assert_eq!(back.counts, row.counts);
        assert!((back.headroom_sum - row.headroom_sum).abs() < 1e-9);
    }

    #[test]
    fn empty_row_serializes_null_headroom() {
        let row = RooflineRow::new("f64");
        assert_eq!(row.headroom_mean(), None);
        assert_eq!(row.policy_bound_share(), None);
        let j = row.to_json();
        assert!(matches!(j.get("headroom"), Some(Value::Null)));
        assert_eq!(RooflineRow::from_json(&j).unwrap(), row);
    }
}
