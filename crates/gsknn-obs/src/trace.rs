//! Request-scoped traces for the serving stack.
//!
//! A [`Trace`] is one request's span timeline: decode, admission,
//! coalesce wait, the kernel phases (amortized over the batch the
//! request rode in) and the reply write, all in microseconds relative to
//! a server-wide epoch. The server keeps the N *slowest* completed
//! traces in a [`TraceRing`] — tail latency is the metric that matters,
//! and the slowest requests are exactly the ones worth a timeline — and
//! exports them in Chrome trace-event JSON ([`chrome_trace_json`]), the
//! format `chrome://tracing` / Perfetto load directly.

use serde_json::Value;
use std::sync::Mutex;

/// One timed section of a request's lifetime.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSpan {
    /// Section name (`"decode"`, `"coalesce wait"`, `"kernel: selection"`, …).
    pub name: String,
    /// Start, microseconds relative to the owning trace's `t0_us`.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Rendering lane within the trace: 0 is the local (router/server)
    /// timeline; a distributed trace places each backend attempt's
    /// stitched spans on its own non-zero track so hedge/failover
    /// siblings show as parallel lanes in the Chrome export.
    pub track: u32,
}

impl TraceSpan {
    /// A span on the main (track 0) timeline.
    pub fn new(name: impl Into<String>, start_us: f64, dur_us: f64) -> Self {
        TraceSpan {
            name: name.into(),
            start_us,
            dur_us,
            track: 0,
        }
    }

    /// Move the span onto a different rendering track.
    pub fn on_track(mut self, track: u32) -> Self {
        self.track = track;
        self
    }
}

/// One request's completed timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Wire-level trace id (echoed to the client in the response header).
    pub trace_id: u64,
    /// Precision lane that handled the request (`"f64"` / `"f32"`).
    pub lane: String,
    /// Terminal wire status label (`"ok"`, `"timeout"`, `"busy"`, …).
    pub status: String,
    /// Query points in the request.
    pub m: usize,
    /// Neighbors requested.
    pub k: usize,
    /// Request receive time, microseconds since the server epoch.
    pub t0_us: f64,
    /// End-to-end latency (receive → reply written), microseconds.
    pub total_us: f64,
    /// Span timeline, starts relative to `t0_us`.
    pub spans: Vec<TraceSpan>,
}

impl Trace {
    /// Sum of all span durations (µs). For a fully-instrumented request
    /// this approaches `total_us`; the gap is untimed glue.
    pub fn span_sum_us(&self) -> f64 {
        self.spans.iter().map(|s| s.dur_us).sum()
    }

    /// JSON object (used inside the `Stats`-adjacent trace export).
    pub fn to_json(&self) -> Value {
        let spans: Vec<Value> = self
            .spans
            .iter()
            .map(|s| {
                Value::Object(vec![
                    ("name".into(), Value::String(s.name.clone())),
                    ("start_us".into(), Value::from(s.start_us)),
                    ("dur_us".into(), Value::from(s.dur_us)),
                    ("track".into(), Value::from(s.track)),
                ])
            })
            .collect();
        Value::Object(vec![
            (
                "trace_id".into(),
                Value::String(format!("{:016x}", self.trace_id)),
            ),
            ("lane".into(), Value::String(self.lane.clone())),
            ("status".into(), Value::String(self.status.clone())),
            ("m".into(), Value::from(self.m)),
            ("k".into(), Value::from(self.k)),
            ("t0_us".into(), Value::from(self.t0_us)),
            ("total_us".into(), Value::from(self.total_us)),
            ("spans".into(), Value::Array(spans)),
        ])
    }
}

/// Bounded keep-the-slowest collection of completed traces.
///
/// `offer` is called once per completed request under a mutex — after
/// the reply is already on the wire, so it is off the latency path —
/// and evicts the fastest resident trace when full.
pub struct TraceRing {
    cap: usize,
    inner: Mutex<Vec<Trace>>,
}

impl TraceRing {
    /// Ring keeping the `cap` slowest traces (`cap == 0` disables).
    pub fn new(cap: usize) -> Self {
        TraceRing {
            cap,
            inner: Mutex::new(Vec::with_capacity(cap.min(1024))),
        }
    }

    /// Capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Offer a completed trace; kept only if the ring has room or the
    /// trace is slower than the current fastest resident.
    pub fn offer(&self, trace: Trace) {
        if self.cap == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        if inner.len() < self.cap {
            inner.push(trace);
            return;
        }
        let (min_idx, min_total) = inner.iter().enumerate().map(|(i, t)| (i, t.total_us)).fold(
            (0, f64::INFINITY),
            |acc, cur| {
                if cur.1 < acc.1 {
                    cur
                } else {
                    acc
                }
            },
        );
        if trace.total_us > min_total {
            inner[min_idx] = trace;
        }
    }

    /// Resident traces, slowest first.
    pub fn snapshot(&self) -> Vec<Trace> {
        let mut traces = self.inner.lock().unwrap().clone();
        traces.sort_by(|a, b| b.total_us.total_cmp(&a.total_us));
        traces
    }

    /// Number of resident traces.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether no trace has been kept yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Render traces as Chrome trace-event JSON: one complete (`"ph": "X"`)
/// event per span, one virtual thread per (trace, track) pair —
/// distributed traces render each backend attempt's track as its own
/// parallel lane under the trace — timestamps in absolute microseconds
/// since the server epoch. Loadable in `chrome://tracing` and Perfetto.
pub fn chrome_trace_json(traces: &[Trace]) -> Value {
    let mut events: Vec<Value> = Vec::new();
    for (i, t) in traces.iter().enumerate() {
        // 256 tids per trace leaves room for 255 backend-attempt lanes
        let tid_of = |track: u32| i as u64 * 256 + track as u64 + 1;
        let mut tracks: Vec<u32> = t.spans.iter().map(|s| s.track).collect();
        tracks.push(0);
        tracks.sort_unstable();
        tracks.dedup();
        for &track in &tracks {
            let lane_name = if track == 0 {
                format!(
                    "trace {:016x} [{} {} m={} k={}] {:.2} ms",
                    t.trace_id,
                    t.lane,
                    t.status,
                    t.m,
                    t.k,
                    t.total_us / 1e3
                )
            } else {
                format!("trace {:016x} · backend lane {}", t.trace_id, track)
            };
            events.push(Value::Object(vec![
                ("name".into(), Value::String("thread_name".into())),
                ("ph".into(), Value::String("M".into())),
                ("pid".into(), Value::from(1u64)),
                ("tid".into(), Value::from(tid_of(track))),
                (
                    "args".into(),
                    Value::Object(vec![("name".into(), Value::String(lane_name))]),
                ),
            ]));
        }
        for s in &t.spans {
            events.push(Value::Object(vec![
                ("name".into(), Value::String(s.name.clone())),
                ("ph".into(), Value::String("X".into())),
                ("pid".into(), Value::from(1u64)),
                ("tid".into(), Value::from(tid_of(s.track))),
                ("ts".into(), Value::from(t.t0_us + s.start_us)),
                ("dur".into(), Value::from(s.dur_us)),
                (
                    "args".into(),
                    Value::Object(vec![
                        (
                            "trace_id".into(),
                            Value::String(format!("{:016x}", t.trace_id)),
                        ),
                        ("lane".into(), Value::String(t.lane.clone())),
                        ("status".into(), Value::String(t.status.clone())),
                    ]),
                ),
            ]));
        }
    }
    Value::Object(vec![
        ("displayTimeUnit".into(), Value::String("ms".into())),
        ("traceEvents".into(), Value::Array(events)),
    ])
}

/// Map a backend's span fragment into the router timeline via
/// RTT-bracketing clock alignment.
///
/// `spans` are in the backend's own monotonic timeline (µs, relative to
/// whatever zero the backend chose); `bracket_start_us..bracket_end_us`
/// is the router-side send→receive window that provably contains all of
/// them (the backend did its work between the router writing the
/// request and reading the reply). The spans' extent is centered on the
/// bracket midpoint — the classic RTT-halving clock estimate — and then
/// every span is clamped into the bracket, so the output always nests
/// inside `[bracket_start_us, bracket_end_us]` even when the backend's
/// span extent exceeds the bracket (possible only through measurement
/// jitter; clamping may shorten a span, never grow or reorder it).
pub fn align_spans(
    spans: &[TraceSpan],
    bracket_start_us: f64,
    bracket_end_us: f64,
) -> Vec<TraceSpan> {
    if spans.is_empty() {
        return Vec::new();
    }
    let (start, end) = if bracket_end_us >= bracket_start_us {
        (bracket_start_us, bracket_end_us)
    } else {
        (bracket_end_us, bracket_start_us)
    };
    let lo = spans
        .iter()
        .map(|s| s.start_us)
        .fold(f64::INFINITY, f64::min);
    let hi = spans
        .iter()
        .map(|s| s.start_us + s.dur_us.max(0.0))
        .fold(f64::NEG_INFINITY, f64::max);
    let offset = (start + end) / 2.0 - (lo + hi) / 2.0;
    spans
        .iter()
        .map(|s| {
            let s_start = (s.start_us + offset).clamp(start, end);
            let s_end = (s.start_us + s.dur_us.max(0.0) + offset).clamp(s_start, end);
            TraceSpan {
                name: s.name.clone(),
                start_us: s_start,
                dur_us: s_end - s_start,
                track: s.track,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64, total_us: f64) -> Trace {
        Trace {
            trace_id: id,
            lane: "f64".into(),
            status: "ok".into(),
            m: 1,
            k: 8,
            t0_us: 100.0 * id as f64,
            total_us,
            spans: vec![
                TraceSpan::new("decode", 0.0, 2.0),
                TraceSpan::new("coalesce wait", 2.0, total_us - 4.0),
                TraceSpan::new("kernel: rank-dc kernel", total_us - 2.0, 2.0),
            ],
        }
    }

    #[test]
    fn ring_keeps_the_slowest() {
        let ring = TraceRing::new(3);
        for (id, total) in [(1, 10.0), (2, 50.0), (3, 20.0), (4, 5.0), (5, 40.0)] {
            ring.offer(trace(id, total));
        }
        let kept = ring.snapshot();
        assert_eq!(kept.len(), 3);
        let ids: Vec<u64> = kept.iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, vec![2, 5, 3], "slowest first: 50, 40, 20 µs");
    }

    #[test]
    fn zero_capacity_ring_stays_empty() {
        let ring = TraceRing::new(0);
        ring.offer(trace(1, 10.0));
        assert!(ring.is_empty());
    }

    #[test]
    fn span_sum_accounts_the_timeline() {
        let t = trace(1, 100.0);
        assert!((t.span_sum_us() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn chrome_export_parses_and_counts_events() {
        let traces = vec![trace(1, 30.0), trace(2, 60.0)];
        let text = chrome_trace_json(&traces).to_string();
        let back: Value = serde_json::from_str(&text).expect("chrome JSON parses");
        let events = back
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        // one metadata + three span events per trace
        assert_eq!(events.len(), 2 * 4);
        let xs = events
            .iter()
            .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X"))
            .count();
        assert_eq!(xs, 6);
        for e in events {
            assert!(e.get("pid").is_some());
            assert!(e.get("tid").is_some());
        }
    }

    #[test]
    fn multi_track_traces_get_one_lane_per_track() {
        let mut t = trace(9, 40.0);
        t.spans
            .push(TraceSpan::new("backend decode", 5.0, 1.0).on_track(1));
        t.spans
            .push(TraceSpan::new("backend decode", 6.0, 1.0).on_track(2));
        let back: Value = serde_json::from_str(&chrome_trace_json(&[t]).to_string()).unwrap();
        let events = back.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        // three thread_name metadata events (tracks 0, 1, 2) + 5 spans
        let meta: Vec<u64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("M"))
            .map(|e| e.get("tid").and_then(|v| v.as_u64()).unwrap())
            .collect();
        assert_eq!(meta, vec![1, 2, 3]);
        let span_tids: Vec<u64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X"))
            .map(|e| e.get("tid").and_then(|v| v.as_u64()).unwrap())
            .collect();
        assert_eq!(span_tids, vec![1, 1, 1, 2, 3]);
    }

    #[test]
    fn align_spans_centers_on_the_bracket_midpoint() {
        // backend saw 10 µs of work starting at its own zero; the
        // router bracket is [100, 140] → extent centered at 120
        let spans = vec![
            TraceSpan::new("decode", 0.0, 2.0),
            TraceSpan::new("kernel", 2.0, 8.0),
        ];
        let aligned = align_spans(&spans, 100.0, 140.0);
        assert_eq!(aligned.len(), 2);
        assert!((aligned[0].start_us - 115.0).abs() < 1e-9);
        assert!((aligned[1].start_us - 117.0).abs() < 1e-9);
        assert!((aligned[1].dur_us - 8.0).abs() < 1e-9);
        // empty input, degenerate and inverted brackets are all total
        assert!(align_spans(&[], 0.0, 10.0).is_empty());
        let degen = align_spans(&spans, 50.0, 50.0);
        assert!(degen.iter().all(|s| s.start_us == 50.0 && s.dur_us == 0.0));
        let flipped = align_spans(&spans, 140.0, 100.0);
        assert_eq!(flipped, aligned);
    }

    proptest::proptest! {
        /// Stitcher invariant: aligned child spans always nest within
        /// their router-side bracket, whatever the backend timestamps
        /// and bracket are, and relative order is preserved.
        #[test]
        fn aligned_spans_always_nest_within_the_bracket(
            raw in proptest::collection::vec(
                (0i64..2_000_000, 0u64..1_000_000), 1..16),
            b0 in 0u64..5_000_000,
            width in 0u64..2_000_000,
        ) {
            let spans: Vec<TraceSpan> = raw
                .iter()
                .map(|&(start, dur)| {
                    TraceSpan::new("s", start as f64 / 10.0, dur as f64 / 10.0)
                })
                .collect();
            let start = b0 as f64 / 10.0;
            let end = start + width as f64 / 10.0;
            let aligned = align_spans(&spans, start, end);
            assert_eq!(aligned.len(), spans.len());
            for (orig, a) in spans.iter().zip(&aligned) {
                assert!(a.start_us >= start - 1e-6, "span starts before bracket");
                assert!(
                    a.start_us + a.dur_us <= end + 1e-6,
                    "span ends after bracket"
                );
                assert!(a.dur_us >= 0.0);
                assert!(a.dur_us <= orig.dur_us + 1e-6, "clamp never grows a span");
            }
            // the shift-then-clamp map is monotone in the start time
            for (i, w) in aligned.windows(2).enumerate() {
                if spans[i].start_us <= spans[i + 1].start_us {
                    assert!(w[0].start_us <= w[1].start_us + 1e-6, "order preserved");
                }
            }
        }
    }

    #[test]
    fn trace_json_round_trips_ids() {
        let t = trace(0xabcd, 30.0);
        let back: Value = serde_json::from_str(&t.to_json().to_string()).unwrap();
        assert_eq!(
            back.get("trace_id").and_then(|v| v.as_str()),
            Some("000000000000abcd")
        );
        assert_eq!(
            back.get("spans")
                .and_then(|v| v.as_array())
                .map(|a| a.len()),
            Some(3)
        );
    }
}
