//! Request-scoped traces for the serving stack.
//!
//! A [`Trace`] is one request's span timeline: decode, admission,
//! coalesce wait, the kernel phases (amortized over the batch the
//! request rode in) and the reply write, all in microseconds relative to
//! a server-wide epoch. The server keeps the N *slowest* completed
//! traces in a [`TraceRing`] — tail latency is the metric that matters,
//! and the slowest requests are exactly the ones worth a timeline — and
//! exports them in Chrome trace-event JSON ([`chrome_trace_json`]), the
//! format `chrome://tracing` / Perfetto load directly.

use serde_json::Value;
use std::sync::Mutex;

/// One timed section of a request's lifetime.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSpan {
    /// Section name (`"decode"`, `"coalesce wait"`, `"kernel: selection"`, …).
    pub name: String,
    /// Start, microseconds relative to the owning trace's `t0_us`.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
}

/// One request's completed timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Wire-level trace id (echoed to the client in the response header).
    pub trace_id: u64,
    /// Precision lane that handled the request (`"f64"` / `"f32"`).
    pub lane: String,
    /// Terminal wire status label (`"ok"`, `"timeout"`, `"busy"`, …).
    pub status: String,
    /// Query points in the request.
    pub m: usize,
    /// Neighbors requested.
    pub k: usize,
    /// Request receive time, microseconds since the server epoch.
    pub t0_us: f64,
    /// End-to-end latency (receive → reply written), microseconds.
    pub total_us: f64,
    /// Span timeline, starts relative to `t0_us`.
    pub spans: Vec<TraceSpan>,
}

impl Trace {
    /// Sum of all span durations (µs). For a fully-instrumented request
    /// this approaches `total_us`; the gap is untimed glue.
    pub fn span_sum_us(&self) -> f64 {
        self.spans.iter().map(|s| s.dur_us).sum()
    }

    /// JSON object (used inside the `Stats`-adjacent trace export).
    pub fn to_json(&self) -> Value {
        let spans: Vec<Value> = self
            .spans
            .iter()
            .map(|s| {
                Value::Object(vec![
                    ("name".into(), Value::String(s.name.clone())),
                    ("start_us".into(), Value::from(s.start_us)),
                    ("dur_us".into(), Value::from(s.dur_us)),
                ])
            })
            .collect();
        Value::Object(vec![
            (
                "trace_id".into(),
                Value::String(format!("{:016x}", self.trace_id)),
            ),
            ("lane".into(), Value::String(self.lane.clone())),
            ("status".into(), Value::String(self.status.clone())),
            ("m".into(), Value::from(self.m)),
            ("k".into(), Value::from(self.k)),
            ("t0_us".into(), Value::from(self.t0_us)),
            ("total_us".into(), Value::from(self.total_us)),
            ("spans".into(), Value::Array(spans)),
        ])
    }
}

/// Bounded keep-the-slowest collection of completed traces.
///
/// `offer` is called once per completed request under a mutex — after
/// the reply is already on the wire, so it is off the latency path —
/// and evicts the fastest resident trace when full.
pub struct TraceRing {
    cap: usize,
    inner: Mutex<Vec<Trace>>,
}

impl TraceRing {
    /// Ring keeping the `cap` slowest traces (`cap == 0` disables).
    pub fn new(cap: usize) -> Self {
        TraceRing {
            cap,
            inner: Mutex::new(Vec::with_capacity(cap.min(1024))),
        }
    }

    /// Capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Offer a completed trace; kept only if the ring has room or the
    /// trace is slower than the current fastest resident.
    pub fn offer(&self, trace: Trace) {
        if self.cap == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        if inner.len() < self.cap {
            inner.push(trace);
            return;
        }
        let (min_idx, min_total) = inner.iter().enumerate().map(|(i, t)| (i, t.total_us)).fold(
            (0, f64::INFINITY),
            |acc, cur| {
                if cur.1 < acc.1 {
                    cur
                } else {
                    acc
                }
            },
        );
        if trace.total_us > min_total {
            inner[min_idx] = trace;
        }
    }

    /// Resident traces, slowest first.
    pub fn snapshot(&self) -> Vec<Trace> {
        let mut traces = self.inner.lock().unwrap().clone();
        traces.sort_by(|a, b| b.total_us.total_cmp(&a.total_us));
        traces
    }

    /// Number of resident traces.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether no trace has been kept yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Render traces as Chrome trace-event JSON: one complete (`"ph": "X"`)
/// event per span, one virtual thread per trace (named with the trace
/// id, lane and status), timestamps in absolute microseconds since the
/// server epoch. Loadable in `chrome://tracing` and Perfetto.
pub fn chrome_trace_json(traces: &[Trace]) -> Value {
    let mut events: Vec<Value> = Vec::new();
    for (i, t) in traces.iter().enumerate() {
        let tid = i as u64 + 1;
        events.push(Value::Object(vec![
            ("name".into(), Value::String("thread_name".into())),
            ("ph".into(), Value::String("M".into())),
            ("pid".into(), Value::from(1u64)),
            ("tid".into(), Value::from(tid)),
            (
                "args".into(),
                Value::Object(vec![(
                    "name".into(),
                    Value::String(format!(
                        "trace {:016x} [{} {} m={} k={}] {:.2} ms",
                        t.trace_id,
                        t.lane,
                        t.status,
                        t.m,
                        t.k,
                        t.total_us / 1e3
                    )),
                )]),
            ),
        ]));
        for s in &t.spans {
            events.push(Value::Object(vec![
                ("name".into(), Value::String(s.name.clone())),
                ("ph".into(), Value::String("X".into())),
                ("pid".into(), Value::from(1u64)),
                ("tid".into(), Value::from(tid)),
                ("ts".into(), Value::from(t.t0_us + s.start_us)),
                ("dur".into(), Value::from(s.dur_us)),
                (
                    "args".into(),
                    Value::Object(vec![
                        (
                            "trace_id".into(),
                            Value::String(format!("{:016x}", t.trace_id)),
                        ),
                        ("lane".into(), Value::String(t.lane.clone())),
                        ("status".into(), Value::String(t.status.clone())),
                    ]),
                ),
            ]));
        }
    }
    Value::Object(vec![
        ("displayTimeUnit".into(), Value::String("ms".into())),
        ("traceEvents".into(), Value::Array(events)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64, total_us: f64) -> Trace {
        Trace {
            trace_id: id,
            lane: "f64".into(),
            status: "ok".into(),
            m: 1,
            k: 8,
            t0_us: 100.0 * id as f64,
            total_us,
            spans: vec![
                TraceSpan {
                    name: "decode".into(),
                    start_us: 0.0,
                    dur_us: 2.0,
                },
                TraceSpan {
                    name: "coalesce wait".into(),
                    start_us: 2.0,
                    dur_us: total_us - 4.0,
                },
                TraceSpan {
                    name: "kernel: rank-dc kernel".into(),
                    start_us: total_us - 2.0,
                    dur_us: 2.0,
                },
            ],
        }
    }

    #[test]
    fn ring_keeps_the_slowest() {
        let ring = TraceRing::new(3);
        for (id, total) in [(1, 10.0), (2, 50.0), (3, 20.0), (4, 5.0), (5, 40.0)] {
            ring.offer(trace(id, total));
        }
        let kept = ring.snapshot();
        assert_eq!(kept.len(), 3);
        let ids: Vec<u64> = kept.iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, vec![2, 5, 3], "slowest first: 50, 40, 20 µs");
    }

    #[test]
    fn zero_capacity_ring_stays_empty() {
        let ring = TraceRing::new(0);
        ring.offer(trace(1, 10.0));
        assert!(ring.is_empty());
    }

    #[test]
    fn span_sum_accounts_the_timeline() {
        let t = trace(1, 100.0);
        assert!((t.span_sum_us() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn chrome_export_parses_and_counts_events() {
        let traces = vec![trace(1, 30.0), trace(2, 60.0)];
        let text = chrome_trace_json(&traces).to_string();
        let back: Value = serde_json::from_str(&text).expect("chrome JSON parses");
        let events = back
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        // one metadata + three span events per trace
        assert_eq!(events.len(), 2 * 4);
        let xs = events
            .iter()
            .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X"))
            .count();
        assert_eq!(xs, 6);
        for e in events {
            assert!(e.get("pid").is_some());
            assert!(e.get("tid").is_some());
        }
    }

    #[test]
    fn trace_json_round_trips_ids() {
        let t = trace(0xabcd, 30.0);
        let back: Value = serde_json::from_str(&t.to_json().to_string()).unwrap();
        assert_eq!(
            back.get("trace_id").and_then(|v| v.as_str()),
            Some("000000000000abcd")
        );
        assert_eq!(
            back.get("spans")
                .and_then(|v| v.as_array())
                .map(|a| a.len()),
            Some(3)
        );
    }
}
