//! Windowed load time-series: per-second snapshots of the serving layer.
//!
//! The serve-side sampler (gsknn-serve's `LoadSampler`) keeps a fixed
//! ring of these, one slot per wall-clock second; this module owns the
//! *data* shape — [`LoadSample`] — its JSON wire form (the `TimeSeries`
//! op's body), and the terminal rendering `gsknn-cli top` uses. Keeping
//! the types here lets the CLI parse and render a dump without linking
//! the server.
//!
//! A sample aggregates across **all** requests in its second — unlike
//! the slowest-traces ring, which keeps whole timelines for a few
//! outliers — so the two exports answer complementary questions:
//! "where did *this* query's time go" (traces) vs "where does *every*
//! cycle go, second over second" (this).

use serde_json::Value;

/// One second of aggregated serving activity.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LoadSample {
    /// Seconds since the server epoch.
    pub t_s: u64,
    /// Query requests received this second (before admission).
    pub arrivals: u64,
    /// Query points received this second (a batch query counts its `m`).
    pub points: u64,
    /// Batches flushed this second.
    pub batches: u64,
    /// Query points executed in those batches.
    pub batch_points: u64,
    /// Flushes triggered by the model target.
    pub flush_model: u64,
    /// Flushes triggered by the deadline.
    pub flush_deadline: u64,
    /// Flushes triggered by shutdown drain.
    pub flush_drain: u64,
    /// Highest in-flight point count observed this second.
    pub queue_depth_max: u64,
    /// In-flight point count at the last observation this second.
    pub in_flight: u64,
    /// Kernel nanoseconds per phase this second, summed over batches.
    /// Names are the kernel's phase names (`"gather-pack R"`, …).
    pub phase_ns: Vec<(String, u64)>,
}

impl LoadSample {
    /// Mean flushed batch size this second, `None` when nothing flushed.
    pub fn batch_m_mean(&self) -> Option<f64> {
        if self.batches == 0 {
            None
        } else {
            Some(self.batch_points as f64 / self.batches as f64)
        }
    }

    /// Total kernel nanoseconds across phases this second.
    pub fn phase_total_ns(&self) -> u64 {
        self.phase_ns.iter().map(|(_, ns)| ns).sum()
    }

    /// JSON object form (field names match the struct).
    pub fn to_json(&self) -> Value {
        let phases = Value::Object(
            self.phase_ns
                .iter()
                .map(|(name, ns)| (name.clone(), Value::from(*ns)))
                .collect(),
        );
        Value::Object(vec![
            ("t_s".to_string(), Value::from(self.t_s)),
            ("arrivals".to_string(), Value::from(self.arrivals)),
            ("points".to_string(), Value::from(self.points)),
            ("batches".to_string(), Value::from(self.batches)),
            ("batch_points".to_string(), Value::from(self.batch_points)),
            ("flush_model".to_string(), Value::from(self.flush_model)),
            (
                "flush_deadline".to_string(),
                Value::from(self.flush_deadline),
            ),
            ("flush_drain".to_string(), Value::from(self.flush_drain)),
            (
                "queue_depth_max".to_string(),
                Value::from(self.queue_depth_max),
            ),
            ("in_flight".to_string(), Value::from(self.in_flight)),
            ("phase_ns".to_string(), phases),
        ])
    }

    /// Parse a sample written by [`LoadSample::to_json`].
    pub fn from_json(v: &Value) -> Option<LoadSample> {
        let field = |name: &str| v.get(name).and_then(|x| x.as_u64());
        let mut phase_ns = Vec::new();
        if let Some(Value::Object(pairs)) = v.get("phase_ns") {
            for (name, ns) in pairs {
                phase_ns.push((name.clone(), ns.as_u64()?));
            }
        }
        Some(LoadSample {
            t_s: field("t_s")?,
            arrivals: field("arrivals")?,
            points: field("points")?,
            batches: field("batches")?,
            batch_points: field("batch_points")?,
            flush_model: field("flush_model")?,
            flush_deadline: field("flush_deadline")?,
            flush_drain: field("flush_drain")?,
            queue_depth_max: field("queue_depth_max")?,
            in_flight: field("in_flight")?,
            phase_ns,
        })
    }
}

/// The `TimeSeries` wire-op body: window metadata plus the samples,
/// oldest first. `enabled: false` (obs compiled out) carries no samples.
pub fn timeseries_json(enabled: bool, window_s: u64, samples: &[LoadSample]) -> Value {
    Value::Object(vec![
        ("experiment".to_string(), Value::from("timeseries")),
        ("enabled".to_string(), Value::from(enabled)),
        ("window_s".to_string(), Value::from(window_s)),
        (
            "samples".to_string(),
            Value::Array(samples.iter().map(LoadSample::to_json).collect()),
        ),
    ])
}

/// Parse a document written by [`timeseries_json`] back into
/// `(enabled, window_s, samples)`.
pub fn parse_timeseries(doc: &Value) -> Option<(bool, u64, Vec<LoadSample>)> {
    let enabled = doc.get("enabled")?.as_bool()?;
    let window_s = doc.get("window_s")?.as_u64()?;
    let mut samples = Vec::new();
    for v in doc.get("samples")?.as_array()? {
        samples.push(LoadSample::from_json(v)?);
    }
    Some((enabled, window_s, samples))
}

/// Render the newest `rows` samples as the `gsknn-cli top` table: one
/// line per second plus a footer aggregating the kernel-phase split
/// across the shown window.
pub fn render_top(samples: &[LoadSample], rows: usize) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "{:>6} {:>8} {:>7} {:>8} {:>7} {:>14} {:>6} {:>6} {:>9}",
        "t(s)",
        "arrive",
        "points",
        "batches",
        "m-mean",
        "flush m/d/dr",
        "depth",
        "infl",
        "kern(ms)"
    )
    .unwrap();
    let start = samples.len().saturating_sub(rows);
    for s in &samples[start..] {
        let m_mean = s
            .batch_m_mean()
            .map(|m| format!("{m:.1}"))
            .unwrap_or_else(|| "-".to_string());
        writeln!(
            out,
            "{:>6} {:>8} {:>7} {:>8} {:>7} {:>14} {:>6} {:>6} {:>9.2}",
            s.t_s,
            s.arrivals,
            s.points,
            s.batches,
            m_mean,
            format!("{}/{}/{}", s.flush_model, s.flush_deadline, s.flush_drain),
            s.queue_depth_max,
            s.in_flight,
            s.phase_total_ns() as f64 / 1e6,
        )
        .unwrap();
    }
    // aggregate phase split over the shown rows
    let mut totals: Vec<(String, u64)> = Vec::new();
    for s in &samples[start..] {
        for (name, ns) in &s.phase_ns {
            match totals.iter_mut().find(|(n, _)| n == name) {
                Some((_, t)) => *t += ns,
                None => totals.push((name.clone(), *ns)),
            }
        }
    }
    let grand: u64 = totals.iter().map(|(_, ns)| ns).sum();
    if grand > 0 {
        write!(out, "phases:").unwrap();
        for (name, ns) in &totals {
            if *ns == 0 {
                continue;
            }
            write!(out, " {} {:.0}%", name, *ns as f64 / grand as f64 * 100.0).unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: u64) -> LoadSample {
        LoadSample {
            t_s: t,
            arrivals: 40,
            points: 40,
            batches: 5,
            batch_points: 40,
            flush_model: 1,
            flush_deadline: 4,
            flush_drain: 0,
            queue_depth_max: 12,
            in_flight: 3,
            phase_ns: vec![
                ("gather-pack R".to_string(), 2_000_000),
                ("rank-dc kernel".to_string(), 6_000_000),
            ],
        }
    }

    #[test]
    fn sample_round_trips_json() {
        let s = sample(7);
        let back = LoadSample::from_json(&s.to_json()).expect("parses");
        assert_eq!(back, s);
        assert_eq!(back.batch_m_mean(), Some(8.0));
        assert_eq!(back.phase_total_ns(), 8_000_000);
    }

    #[test]
    fn empty_second_has_no_batch_mean() {
        assert_eq!(LoadSample::default().batch_m_mean(), None);
    }

    #[test]
    fn document_round_trips_and_flags_enabled() {
        let samples = vec![sample(1), sample(2)];
        let doc = timeseries_json(true, 120, &samples);
        let (enabled, window, back) = parse_timeseries(&doc).expect("parses");
        assert!(enabled);
        assert_eq!(window, 120);
        assert_eq!(back, samples);

        let off = timeseries_json(false, 0, &[]);
        let (enabled, _, back) = parse_timeseries(&off).expect("parses");
        assert!(!enabled);
        assert!(back.is_empty());
    }

    #[test]
    fn render_top_shows_rows_and_phase_split() {
        let samples: Vec<_> = (0..20).map(sample).collect();
        let text = render_top(&samples, 10);
        // 1 header + 10 rows + 1 phase footer
        assert_eq!(text.lines().count(), 12);
        assert!(text.contains("flush m/d/dr"));
        assert!(text.contains("1/4/0"));
        assert!(text.contains("rank-dc kernel 75%"), "{text}");
        // oldest rows are cut, newest kept
        assert!(!text.lines().any(|l| l.trim_start().starts_with("9 ")));
        assert!(text.contains("\n    19 "));
    }

    #[test]
    fn render_top_handles_empty_window() {
        let text = render_top(&[], 10);
        assert_eq!(text.lines().count(), 1, "header only: {text}");
    }
}
