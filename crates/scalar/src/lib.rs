//! The element-type abstraction underneath the whole GSKNN stack.
//!
//! The paper's kernel is `double`-only; production embedding workloads are
//! overwhelmingly `f32`, where the same SIMD registers hold twice the
//! lanes. Every layer of this workspace — packing, blocking, the fused
//! micro-kernel, heap selection, the reference kernels — is generic over
//! [`GsknnScalar`], with exactly two implementors: `f64` (the paper's
//! precision, the default type parameter everywhere) and `f32`.
//!
//! The trait carries the *register geometry* of each precision as
//! associated constants: the micro-tile is `MR × NR` with `MR = 8` rows
//! for both types, while `NR` doubles from 4 (`f64`, one 256-bit column
//! register of 4 lanes) to 8 (`f32`, 8 lanes). Keeping the geometry on
//! the scalar type lets the packing routines, blocking-parameter
//! derivation, and tile buffers monomorphize to the right constants
//! without any runtime configuration.

use std::cmp::Ordering;
use std::fmt::{Debug, Display};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Largest micro-tile any scalar type uses (`MR × NR = 8 × 8` for f32).
/// Fixed-size tile buffers are sized by this so they work for every
/// implementor without `generic_const_exprs`.
pub const MAX_TILE: usize = 64;

/// Floating-point element type of the kNN kernel stack.
///
/// Implemented for `f64` and `f32` only; the associated constants pin the
/// micro-kernel register blocking for each precision.
pub trait GsknnScalar:
    Copy
    + Clone
    + Default
    + Debug
    + Display
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + 'static
{
    /// Micro-tile rows (queries per register block).
    const MR: usize;
    /// Micro-tile columns (references per register block); the SIMD width
    /// of one 256-bit register for this type.
    const NR: usize;
    /// Bytes per element (`size_of::<Self>()` as a const for blocking
    /// arithmetic).
    const BYTES: usize;
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Positive infinity (heap sentinel distance).
    const INFINITY: Self;
    /// Negative infinity (d-heap pad value).
    const NEG_INFINITY: Self;
    /// Quiet NaN.
    const NAN: Self;
    /// Default machine-epsilon-scale tolerance for cross-precision
    /// distance comparison (`1e-9` for f64, `1e-4` for f32).
    const DIST_TOL: Self;
    /// Short lowercase label (`"f64"` / `"f32"`), for reports and file
    /// names.
    const NAME: &'static str;

    /// Lossy conversion from `f64` (exact for f64, rounds for f32).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (exact for both implementors).
    fn to_f64(self) -> f64;
    /// IEEE-754 `totalOrder` — the NaN-safe comparison every heap and
    /// sort in the workspace uses.
    fn total_cmp(&self, other: &Self) -> Ordering;
    /// Fused multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// `self^p`.
    fn powf(self, p: Self) -> Self;
    /// IEEE max (NaN-propagating like `f64::max`).
    fn max(self, other: Self) -> Self;
    /// IEEE min.
    fn min(self, other: Self) -> Self;
    /// Finite (neither infinite nor NaN).
    fn is_finite(self) -> bool;
    /// NaN test.
    fn is_nan(self) -> bool;
}

impl GsknnScalar for f64 {
    const MR: usize = 8;
    const NR: usize = 4;
    const BYTES: usize = 8;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const INFINITY: Self = f64::INFINITY;
    const NEG_INFINITY: Self = f64::NEG_INFINITY;
    const NAN: Self = f64::NAN;
    const DIST_TOL: Self = 1e-9;
    const NAME: &'static str = "f64";

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn total_cmp(&self, other: &Self) -> Ordering {
        f64::total_cmp(self, other)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn powf(self, p: Self) -> Self {
        f64::powf(self, p)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f64::min(self, other)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline(always)]
    fn is_nan(self) -> bool {
        f64::is_nan(self)
    }
}

impl GsknnScalar for f32 {
    const MR: usize = 8;
    const NR: usize = 8;
    const BYTES: usize = 4;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const INFINITY: Self = f32::INFINITY;
    const NEG_INFINITY: Self = f32::NEG_INFINITY;
    const NAN: Self = f32::NAN;
    const DIST_TOL: Self = 1e-4;
    const NAME: &'static str = "f32";

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn total_cmp(&self, other: &Self) -> Ordering {
        f32::total_cmp(self, other)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn powf(self, p: Self) -> Self {
        f32::powf(self, p)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f32::min(self, other)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline(always)]
    fn is_nan(self) -> bool {
        f32::is_nan(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile_fits<T: GsknnScalar>() {
        assert!(T::MR * T::NR <= MAX_TILE);
        assert_eq!(T::BYTES, std::mem::size_of::<T>());
    }

    #[test]
    fn geometry_invariants() {
        tile_fits::<f64>();
        tile_fits::<f32>();
        // f32 doubles the register lanes, so NR doubles at equal MR
        assert_eq!(<f32 as GsknnScalar>::NR, 2 * <f64 as GsknnScalar>::NR);
        assert_eq!(<f32 as GsknnScalar>::MR, <f64 as GsknnScalar>::MR);
    }

    fn round_trip<T: GsknnScalar>() {
        for v in [-3.5f64, 0.0, 1.0, 1024.25] {
            assert_eq!(T::from_f64(v).to_f64(), v);
        }
        assert!(T::NAN.is_nan());
        assert!(!T::INFINITY.is_finite());
        assert!(T::NEG_INFINITY < T::ZERO);
        assert_eq!(T::ZERO + T::ONE, T::ONE);
    }

    #[test]
    fn conversions_round_trip() {
        round_trip::<f64>();
        round_trip::<f32>();
    }

    fn nan_orders_last<T: GsknnScalar>() {
        // total_cmp puts +NaN above +inf — heaps rely on this to evict
        // NaN distances first rather than panic
        assert_eq!(T::NAN.total_cmp(&T::INFINITY), Ordering::Greater);
        assert_eq!(T::ZERO.total_cmp(&T::ONE), Ordering::Less);
        assert_eq!(T::ONE.total_cmp(&T::ONE), Ordering::Equal);
    }

    #[test]
    fn total_order_semantics() {
        nan_orders_last::<f64>();
        nan_orders_last::<f32>();
    }

    fn fma_works<T: GsknnScalar>() {
        let (a, b, c) = (T::from_f64(2.0), T::from_f64(3.0), T::from_f64(4.0));
        assert_eq!(a.mul_add(b, c).to_f64(), 10.0);
        assert_eq!(T::from_f64(9.0).sqrt().to_f64(), 3.0);
        assert_eq!(T::from_f64(-2.0).abs().to_f64(), 2.0);
        assert_eq!(T::from_f64(2.0).powf(T::from_f64(3.0)).to_f64(), 8.0);
    }

    #[test]
    fn arithmetic_helpers() {
        fma_works::<f64>();
        fma_works::<f32>();
    }
}
