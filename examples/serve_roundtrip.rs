//! Serve round trip: start a gsknn-serve server in-process, fire mixed
//! f64/f32 queries at it over real TCP, and print the coalescing report.
//!
//! ```sh
//! cargo run --release --example serve_roundtrip
//! ```

use gsknn::serve::{Client, Outcome, ServeIndex, Server, ServerConfig};

fn main() {
    // The index: 20,000 points in 24 dimensions behind a 4-tree forest.
    // ServeIndex keeps an f32 cast alongside, so one server answers both
    // precisions from the same table.
    let refs = gsknn::data::uniform(20_000, 24, 42);
    let index = ServeIndex::build(refs, 4, 2048, 7);

    let server = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(), // free port
            workers_per_lane: 2,
            ..ServerConfig::default()
        },
        index,
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    for (precision, target) in server.batch_targets() {
        println!("{precision} lane flushes at m* = {target} (or on deadline)");
    }

    // The server blocks in run(); give it a thread.
    let server = std::thread::spawn(move || server.run());

    // Two clients on separate connections, one per precision.
    let mut c64 = Client::connect(addr).expect("connect f64");
    let mut c32 = Client::connect(addr).expect("connect f32");
    c64.ping().expect("ping");

    let queries = gsknn::data::uniform(64, 24, 4242);
    let queries32 = queries.cast::<f32>();
    let (k, deadline_ms) = (8, 100);
    for i in 0..queries.len() {
        // Single-point queries: the server's coalescer batches these into
        // one kernel call per flush, guided by the §2.6 model.
        let out64 = c64
            .query::<f64>(queries.point(i), 1, k, deadline_ms)
            .expect("query f64");
        let out32 = c32
            .query::<f32>(queries32.point(i), 1, k, deadline_ms)
            .expect("query f32");
        if i == 0 {
            if let (Outcome::Neighbors(t64), Outcome::Neighbors(t32)) =
                (&out64.outcome, &out32.outcome)
            {
                println!(
                    "query 0: f64 nearest #{} (d²={:.4}, rtt {:?}), f32 nearest #{} (d²={:.4}, rtt {:?})",
                    t64.row(0)[0].idx,
                    t64.row(0)[0].dist,
                    out64.rtt,
                    t32.row(0)[0].idx,
                    t32.row(0)[0].dist,
                    out32.rtt,
                );
            }
        }
    }

    // One 48-point batch query — arrives as a single job, usually enough
    // to trip the model flush on its own.
    let batch: Vec<f64> = (0..48).flat_map(|i| queries.point(i).to_vec()).collect();
    match c64
        .query::<f64>(&batch, 48, k, deadline_ms)
        .expect("batch")
        .outcome
    {
        Outcome::Neighbors(table) => println!("batch query answered {} rows", table.len()),
        other => println!("batch query answered {other:?}"),
    }

    println!("\nserver stats:\n{}", c64.stats().expect("stats"));

    // Graceful shutdown: the server drains pending work, then run()
    // returns the final ServeReport.
    c64.shutdown().expect("shutdown");
    let report = server.join().expect("server thread");
    print!("{}", report.render_table());
}
