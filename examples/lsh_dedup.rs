//! Near-duplicate detection with the LSH all-NN solver: find, for every
//! item in a corpus with planted near-duplicates, its closest other item
//! — the streaming/image-dataset use case the paper's introduction
//! motivates ("frequent updates of X ... time-critical").
//!
//! ```sh
//! cargo run --release --example lsh_dedup
//! ```

use gsknn::core::GsknnConfig;
use gsknn::hashing::{LshConfig, LshParams, LshSolver};
use gsknn::tree::GsknnLeaf;
use gsknn::{DistanceKind, PointSet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    // corpus: 5,000 base items in 24-d plus a 10% tail of near-duplicates
    let base = 5_000usize;
    let dupes = base / 10;
    let d = 24;
    let mut rng = SmallRng::seed_from_u64(11);
    let mut data: Vec<f64> = (0..base * d).map(|_| rng.gen::<f64>() * 10.0).collect();
    let mut dup_of = Vec::with_capacity(dupes);
    for _ in 0..dupes {
        let src = rng.gen_range(0..base);
        dup_of.push(src);
        for p in 0..d {
            // a duplicate = source + tiny jitter
            let v = data[src * d + p] + (rng.gen::<f64>() - 0.5) * 1e-3;
            data.push(v);
        }
    }
    let n = base + dupes;
    let x = PointSet::from_vec(d, n, data);
    println!("corpus: {base} items + {dupes} planted near-duplicates, d = {d}");

    // k = 2: self + closest other item
    let cfg = LshConfig {
        tables: 10,
        params: LshParams {
            hashes_per_table: 6,
            bucket_width: 4.0,
        },
        seed: 3,
        parallel_buckets: true,
        max_bucket: 2048,
        probes: 0,
    };
    let (table, stats) = LshSolver::new(cfg).solve(
        &x,
        2,
        || GsknnLeaf::new(GsknnConfig::default(), DistanceKind::SqL2),
        None,
    );
    for s in &stats {
        println!(
            "table {:>2}: {:>5} buckets, {:>6} points covered",
            s.table, s.buckets, s.covered
        );
    }

    // a duplicate is "caught" if its nearest other item is its source
    let caught = dup_of
        .iter()
        .enumerate()
        .filter(|&(i, &src)| {
            let id = (base + i) as u32;
            let row = table.row(base + i);
            // row[0] is the self-match; row[1] the closest other
            row.iter()
                .find(|nb| nb.idx != id)
                .is_some_and(|nb| nb.idx == src as u32)
        })
        .count();
    println!(
        "\nduplicates caught: {caught}/{dupes} ({:.1}%)",
        100.0 * caught as f64 / dupes as f64
    );
    assert!(
        caught as f64 / dupes as f64 > 0.9,
        "LSH should catch nearly all 1e-3-jitter duplicates"
    );
}
