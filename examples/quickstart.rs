//! Quickstart: solve one exact kNN kernel problem with GSKNN.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gsknn::{DistanceKind, Gsknn, GsknnConfig};

fn main() {
    // A coordinate table X of 10,000 points in 32 dimensions. In a real
    // application this is your embedding/feature matrix, column-major
    // (each point's coordinates contiguous).
    let x = gsknn::data::uniform(10_000, 32, 42);

    // The "general stride" interface: queries and references are index
    // lists into X — no need to copy points into dense matrices. Here:
    // the first 100 points query against every point.
    let q_idx: Vec<usize> = (0..100).collect();
    let r_idx: Vec<usize> = (0..x.len()).collect();

    // One reusable executor. The default configuration uses the paper's
    // Ivy Bridge blocking parameters and auto-selects the kernel variant
    // (Var#1 for small k, Var#6 for large k).
    let mut exec = Gsknn::new(GsknnConfig::default());

    let k = 5;
    let table = exec.run(&x, &q_idx, &r_idx, k, DistanceKind::SqL2);

    println!("5 nearest neighbors of the first three queries:");
    for qi in 0..3 {
        print!("  point {qi}:");
        for nb in table.row(qi) {
            print!("  #{} (d²={:.4})", nb.idx, nb.dist);
        }
        println!();
    }

    // Every point is its own nearest neighbor (distance ~0).
    assert!(table.row(0)[0].idx == 0 && table.row(0)[0].dist < 1e-12);

    // Neighbor lists are updatable: stream in more references later and
    // the lists fold them in (this is how the approximate solvers use
    // the kernel).
    let more = gsknn::data::uniform(10_000, 32, 43);
    let _ = more; // (a second table would need its own index space)
    println!("\nDone. See examples/allnn_forest.rs for the full pipeline.");
}
