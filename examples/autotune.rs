//! Model-guided tuning (§2.6): use the performance model to (a) choose
//! between Var#1 and Var#6 without an exhaustive sweep, and (b) schedule
//! a bag of irregular kNN tasks across workers with LPT list scheduling.
//!
//! ```sh
//! cargo run --release --example autotune
//! ```

use gsknn::core::model::Approach;
use gsknn::core::scheduler::{lpt_schedule, makespan, run_task_parallel, KnnTask};
use gsknn::core::GsknnConfig;
use gsknn::{DistanceKind, MachineParams, Model, ProblemSize, Variant};

fn main() {
    let machine = MachineParams::ivy_bridge_1core();
    let model = Model::new(machine);

    // (a) the (d, k) decision surface for m = n = 8192
    println!("variant decision surface (m = n = 8192), per the performance model:");
    print!("{:>8}", "d\\k");
    let ks = [16usize, 64, 256, 512, 1024, 2048, 4096];
    for k in ks {
        print!("{k:>8}");
    }
    println!();
    for d in [16usize, 64, 256, 1024] {
        print!("{d:>8}");
        for k in ks {
            let p = ProblemSize {
                m: 8192,
                n: 8192,
                d,
                k,
            };
            let v = model.choose_variant(&p);
            print!("{:>8}", if v == Variant::Var1 { "V1" } else { "V6" });
        }
        println!();
    }
    if let Some(thr) = model.threshold_k(8192, 8192, 64, 8192) {
        println!("\npredicted switch-over at d = 64: k = {thr}");
        let p = ProblemSize {
            m: 8192,
            n: 8192,
            d: 64,
            k: thr,
        };
        println!(
            "  predicted Var#1 {:.1} GFLOPS vs Var#6 {:.1} GFLOPS at the threshold",
            model.gflops(&p, Approach::Var1),
            model.gflops(&p, Approach::Var6)
        );
    }

    // (b) schedule 12 irregular tasks on 4 workers
    println!("\nLPT scheduling of irregular kernel tasks:");
    let x = gsknn::data::uniform(6_000, 32, 9);
    let tasks: Vec<KnnTask> = (0..12)
        .map(|t| {
            let span = 200 + (t % 5) * 800; // irregular sizes
            KnnTask {
                q_idx: (0..span).collect(),
                r_idx: (0..6_000).collect(),
                k: 8,
            }
        })
        .collect();
    let costs: Vec<f64> = tasks
        .iter()
        .map(|t| {
            model.estimate_runtime(&ProblemSize {
                m: t.q_idx.len(),
                n: t.r_idx.len(),
                d: x.dim(),
                k: t.k,
            })
        })
        .collect();
    let schedule = lpt_schedule(&costs, 4);
    for (w, bucket) in schedule.iter().enumerate() {
        let load: f64 = bucket.iter().map(|&t| costs[t]).sum();
        println!(
            "  worker {w}: tasks {bucket:?}, predicted {:.1} ms",
            load * 1e3
        );
    }
    println!(
        "  predicted makespan {:.1} ms vs serial {:.1} ms",
        makespan(&schedule, &costs) * 1e3,
        costs.iter().sum::<f64>() * 1e3
    );

    let t0 = std::time::Instant::now();
    let results = run_task_parallel(
        &x,
        &tasks,
        DistanceKind::SqL2,
        &GsknnConfig::default(),
        machine,
        4,
    );
    println!(
        "  executed {} tasks in {:.1} ms ({} neighbor rows)",
        results.len(),
        t0.elapsed().as_secs_f64() * 1e3,
        results.iter().map(|t| t.len()).sum::<usize>()
    );
}
