//! The ℓp-norm generalization (§2.4): the GEMM decomposition is locked to
//! the Euclidean expansion, but the fused kernel computes any ℓp norm at
//! the same blocked, vectorized pace. This example contrasts the
//! neighbors that ℓ1, ℓ2 and ℓ∞ produce on heavy-tailed data — where the
//! choice of norm genuinely changes who your neighbors are.
//!
//! ```sh
//! cargo run --release --example lp_norms
//! ```

use gsknn::{DistanceKind, Gsknn, GsknnConfig, PointSet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    // heavy-tailed data: most coordinates small, occasional large spikes
    // (ℓ1 tolerates spikes, ℓ∞ is dominated by them)
    let n = 4_000;
    let d = 16;
    let mut rng = SmallRng::seed_from_u64(5);
    let data: Vec<f64> = (0..n * d)
        .map(|_| {
            let u = rng.gen::<f64>();
            if u > 0.95 {
                rng.gen::<f64>() * 20.0 // spike
            } else {
                rng.gen::<f64>()
            }
        })
        .collect();
    let x = PointSet::from_vec(d, n, data);

    let q: Vec<usize> = (0..8).collect();
    let r: Vec<usize> = (0..n).collect();
    let k = 5;
    let mut exec = Gsknn::new(GsknnConfig::default());

    let norms = [
        DistanceKind::L1,
        DistanceKind::SqL2,
        DistanceKind::LInf,
        DistanceKind::Lp(0.5),
    ];
    let tables: Vec<_> = norms
        .iter()
        .map(|&kind| exec.run(&x, &q, &r, k, kind))
        .collect();

    println!("nearest-neighbor ids per norm (query: 5 nearest, self excluded):");
    println!(
        "{:>6}  {:>24}  {:>24}  {:>24}  {:>24}",
        "query", "l1", "sq-l2", "linf", "l0.5"
    );
    for qi in 0..q.len() {
        let fmt = |t: &gsknn::NeighborTable| {
            t.row(qi)
                .iter()
                .filter(|nb| nb.idx != qi as u32)
                .map(|nb| nb.idx.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        println!(
            "{:>6}  {:>24}  {:>24}  {:>24}  {:>24}",
            qi,
            fmt(&tables[0]),
            fmt(&tables[1]),
            fmt(&tables[2]),
            fmt(&tables[3])
        );
    }

    // count how often the norms disagree on the single nearest neighbor
    let mut disagreements = 0;
    for qi in 0..q.len() {
        let nn = |t: &gsknn::NeighborTable| {
            t.row(qi)
                .iter()
                .find(|nb| nb.idx != qi as u32)
                .map(|nb| nb.idx)
        };
        let l1 = nn(&tables[0]);
        let linf = nn(&tables[2]);
        if l1 != linf {
            disagreements += 1;
        }
    }
    println!(
        "\nl1 vs linf nearest-neighbor disagreements: {disagreements}/{}",
        q.len()
    );
}
