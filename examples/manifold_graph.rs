//! Manifold-learning kNN graph on the swiss roll — §1's motivating
//! application ("construction of nearest-neighbor graphs for manifold
//! learning"). A good neighbor graph on a rolled-up 2-d sheet connects
//! points *along* the sheet: the graph is one connected component, yet
//! graph (geodesic-ish) hop distances between the roll's ends are much
//! larger than their 3-d Euclidean distance suggests.
//!
//! ```sh
//! cargo run --release --example manifold_graph
//! ```

use gsknn::graph::{build_exact, connected_components, Symmetrize};
use gsknn::DistanceKind;
use std::collections::VecDeque;

fn main() {
    let n = 4_000;
    let x = gsknn::data::swiss_roll(n, 0.05, 11);
    println!("swiss roll: {n} points, 3-d ambient, 2-d intrinsic");

    for k in [4usize, 8, 12] {
        let g = build_exact(&x, k, DistanceKind::SqL2, Symmetrize::Union);
        let comps = connected_components(&g);
        let (dmin, dmean, dmax) = g.degree_stats();
        println!(
            "k = {k:>2}: {} edges, degree {dmin}/{dmean:.1}/{dmax}, {} component(s)",
            g.num_edges(),
            comps.count()
        );
        if comps.count() == 1 {
            // BFS hop distance between the innermost and outermost points
            let radius = |i: usize| {
                let p = x.point(i);
                (p[0] * p[0] + p[2] * p[2]).sqrt()
            };
            let inner = (0..n)
                .min_by(|&a, &b| radius(a).total_cmp(&radius(b)))
                .unwrap();
            let outer = (0..n)
                .max_by(|&a, &b| radius(a).total_cmp(&radius(b)))
                .unwrap();
            let hops = bfs_hops(&g, inner, outer);
            let euclid = gsknn::data::dist_sq_l2(x.point(inner), x.point(outer)).sqrt();
            println!(
                "         inner->outer: {hops:?} graph hops vs {euclid:.1} ambient distance \
                 (the graph walks along the sheet)"
            );
        }
    }
}

fn bfs_hops(g: &gsknn::graph::CsrGraph, from: usize, to: usize) -> Option<usize> {
    let n = g.num_vertices();
    let mut dist = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    dist[from] = 0;
    queue.push_back(from);
    while let Some(v) = queue.pop_front() {
        if v == to {
            return Some(dist[v]);
        }
        for &w in g.neighbors(v) {
            if dist[w as usize] == usize::MAX {
                dist[w as usize] = dist[v] + 1;
                queue.push_back(w as usize);
            }
        }
    }
    None
}
