//! All-nearest-neighbors on a synthetic "image descriptor" dataset with
//! the randomized KD-tree forest — the paper's Table 1 pipeline in
//! miniature: an intrinsically low-dimensional point cloud (10-d Gaussian
//! mixture) embedded in a 64-dimensional ambient space, exactly the kind
//! of data where approximate tree methods shine and where the kNN kernel
//! is >90% of the runtime.
//!
//! ```sh
//! cargo run --release --example allnn_forest
//! ```

use gsknn::core::GsknnConfig;
use gsknn::reference::oracle;
use gsknn::tree::{AllNnSolver, GsknnLeaf, RkdtConfig};
use gsknn::DistanceKind;
use std::time::Instant;

fn main() {
    let n = 20_000;
    let d = 64;
    let k = 8;
    println!("building {n} synthetic descriptors in {d}-d (intrinsic dim 10)...");
    let x = gsknn::data::gaussian_embedded(n, d, 16, 7);

    // Exact ground truth on a sample of queries, to report recall
    // honestly without paying the full O(N²) cost.
    let sample: Vec<usize> = (0..n).step_by(97).collect();
    let all: Vec<usize> = (0..n).collect();
    println!(
        "computing exact truth for {} sampled queries...",
        sample.len()
    );
    let truth = oracle::exact(&x, &sample, &all, k, DistanceKind::SqL2);

    let cfg = RkdtConfig {
        leaf_size: 1024,
        iterations: 6,
        seed: 1,
        parallel_leaves: true,
        lpt_workers: None,
    };
    println!(
        "solving all-NN: {} iterations of {}-point leaves, GSKNN leaf kernel",
        cfg.iterations, cfg.leaf_size
    );
    let t0 = Instant::now();
    let (table, stats) = AllNnSolver::new(cfg).solve(
        &x,
        k,
        || GsknnLeaf::new(GsknnConfig::default(), DistanceKind::SqL2),
        None,
    );
    let elapsed = t0.elapsed();

    println!("\niter  changed-rows  kernel-seconds");
    for s in &stats {
        println!(
            "{:>4}  {:>11.1}%  {:>13.3}",
            s.iter,
            100.0 * s.changed_fraction,
            s.kernel_seconds
        );
    }

    // recall on the sampled queries
    let mut hits = 0usize;
    let mut total = 0usize;
    for (row, &qi) in sample.iter().enumerate() {
        let approx: Vec<u32> = table.row(qi).iter().map(|nb| nb.idx).collect();
        for t in truth.row(row) {
            if t.idx != u32::MAX {
                total += 1;
                if approx.contains(&t.idx) {
                    hits += 1;
                }
            }
        }
    }
    println!(
        "\nall-NN of {n} points in {:.2?}: sampled recall {:.1}%",
        elapsed,
        100.0 * hits as f64 / total as f64
    );
    assert!(hits as f64 / total as f64 > 0.8, "forest should converge");
}
