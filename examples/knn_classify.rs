//! k-NN classification with out-of-sample forest queries — the classic
//! supervised-learning use of the kernel (the paper's §1: kNN "is used in
//! cross-validation studies in supervised learning").
//!
//! Train set: labeled points from `C` Gaussian classes. Test set: fresh
//! points from the same classes. Prediction: majority vote among the
//! k nearest *training* points found by the randomized-KD-tree forest
//! through the cross-table GSKNN kernel.
//!
//! ```sh
//! cargo run --release --example knn_classify
//! ```

use gsknn::core::GsknnConfig;
use gsknn::tree::Forest;
use gsknn::{DistanceKind, PointSet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// `n` labeled points from `classes` well-separated Gaussians in `d`-d.
fn labeled_blobs(n: usize, d: usize, classes: usize, seed: u64) -> (PointSet, Vec<usize>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    // fixed class centers on a scaled simplex-ish arrangement
    let centers: Vec<f64> = {
        let mut c_rng = SmallRng::seed_from_u64(999);
        (0..classes * d)
            .map(|_| c_rng.gen::<f64>() * 12.0)
            .collect()
    };
    let mut data = Vec::with_capacity(n * d);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let c = rng.gen_range(0..classes);
        labels.push(c);
        for p in 0..d {
            data.push(centers[c * d + p] + rng.gen::<f64>() - 0.5);
        }
    }
    (PointSet::from_vec(d, n, data), labels)
}

fn main() {
    let (d, classes, k) = (16, 5, 7);
    let (train, train_labels) = labeled_blobs(8_000, d, classes, 1);
    let (test, test_labels) = labeled_blobs(1_000, d, classes, 2);
    println!(
        "kNN classification: {} train / {} test points, {classes} classes, d = {d}, k = {k}",
        train.len(),
        test.len()
    );

    let forest = Forest::build(&train, 6, 256, 7);
    let t0 = std::time::Instant::now();
    let table = forest.query(&train, &test, k, DistanceKind::SqL2, GsknnConfig::default());
    let query_time = t0.elapsed();

    let mut correct = 0usize;
    for (i, &label) in test_labels.iter().enumerate() {
        let mut votes = vec![0usize; classes];
        for nb in table.row(i).iter().filter(|nb| nb.idx != u32::MAX) {
            votes[train_labels[nb.idx as usize]] += 1;
        }
        let pred = votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .map(|(c, _)| c)
            .unwrap();
        if pred == label {
            correct += 1;
        }
    }
    let acc = correct as f64 / test.len() as f64;
    println!(
        "queried in {query_time:.2?}; accuracy {:.1}% ({correct}/{})",
        100.0 * acc,
        test.len()
    );
    assert!(
        acc > 0.95,
        "well-separated blobs should classify near-perfectly"
    );
}
